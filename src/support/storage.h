// cusp::support — injectable storage layer with deterministic fault
// injection and a durable atomic-write primitive.
//
// Every durable artifact of the stack (checkpoint images, buddy replicas,
// .cgr/.gr graph files) goes through the two primitives below instead of
// raw stdio, for two reasons:
//
//  * Durability. atomicWriteFile implements the full commit protocol a
//    crash-consistent store needs: write to `<path>.tmp`, fflush + fsync
//    the file, rename() into place, then fsync the containing directory.
//    Without the fsyncs a host crash can commit a zero-length or partial
//    "final" file (the rename is durable before the data is); without the
//    directory fsync the rename itself can be lost.
//
//  * Injectability. A StorageFaultPlan describes, ahead of a run, which
//    storage operations fail and how — mirroring comm::FaultPlan for the
//    interconnect. Faults match by (operation, path substring, occurrence)
//    so a given plan replays identically for a given program; the
//    occurrence counter is per fault, counting only the operations that
//    fault's predicate matches. (With several host threads writing
//    DIFFERENT files, substring-pinned faults stay deterministic; a
//    wildcard fault — empty substring — counts a thread-interleaving-
//    dependent global order and is only deterministic single-threaded.)
//
// Fault taxonomy (StorageFaultKind):
//   kWriteFail   — the tmp write dies partway; a torn tmp file is left
//                  behind (crash debris) and StorageError{kWriteFailed}
//                  is thrown. The final file is never touched.
//   kTornWrite   — silent corruption: only the first `tornBytes` bytes of
//                  the image reach the disk, yet the commit "succeeds".
//                  Models storage that acknowledges writes it lost; caught
//                  later by the consumer's CRC check on load.
//   kEnospc      — like kWriteFail but with StorageError{kNoSpace}, the
//                  signature consumers treat as PERSISTENT (a full disk
//                  does not fix itself mid-run) and react to by disabling
//                  further checkpointing instead of retrying.
//   kRenameFail  — the tmp file is fully written and fsynced but the
//                  commit rename fails (equivalently: the process crashed
//                  between write and rename). The orphaned tmp is exactly
//                  what garbageCollectCheckpointTmp sweeps.
//   kReadFail    — the read fails outright (EIO); readFileBytes throws
//                  StorageError{kReadFailed}.
//   kBitRot      — at-rest corruption: the read succeeds but one
//                  deterministically chosen byte of the returned image is
//                  flipped. Caught by the consumer's CRC check.
//
// The injector attaches process-wide (like obs::attach) so the seam
// reaches every consumer without threading a handle through ten call
// signatures; ScopedStorageFaults is the RAII attach the tests use.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace cusp::support {

enum class StorageOp : uint8_t {
  kWrite,   // an atomicWriteFile commit (consulted once per call)
  kRename,  // the rename step of a commit (consulted after a good write)
  kRead,    // a readFileBytes call
};

enum class StorageFaultKind : uint8_t {
  kWriteFail,
  kTornWrite,
  kEnospc,
  kRenameFail,
  kReadFail,
  kBitRot,
};

const char* storageFaultKindName(StorageFaultKind kind);

// Matches the `occurrence`-th (0-based) operation of the kind's op class
// whose path contains `pathSubstring`, and the following `repeat - 1`
// matches of the same shape (repeat > 1 models a persistent condition,
// e.g. ENOSPC firing on every write until the run reacts).
struct StorageFault {
  StorageFaultKind kind = StorageFaultKind::kWriteFail;
  std::string pathSubstring;  // empty = any path
  uint64_t occurrence = 0;
  uint32_t repeat = 1;
  uint64_t tornBytes = 0;  // kTornWrite: bytes that actually reach the disk
};

struct StorageFaultPlan {
  std::vector<StorageFault> faults;

  bool empty() const { return faults.empty(); }
};

// Injection counters, by kind.
struct StorageFaultStats {
  uint64_t writeFailures = 0;
  uint64_t tornWrites = 0;
  uint64_t enospcFailures = 0;
  uint64_t renameFailures = 0;
  uint64_t readFailures = 0;
  uint64_t bitRotsInjected = 0;
};

// Structured storage failure. Consumers dispatch on `kind`: kNoSpace is the
// persistent-condition signal (checkpointing is disabled for the rest of
// the run), everything else is a per-operation failure the escalation
// ladder absorbs (skip the checkpoint / fall back to replica or an earlier
// epoch).
class StorageError : public std::runtime_error {
 public:
  enum class Kind : uint8_t { kWriteFailed, kNoSpace, kRenameFailed, kReadFailed };

  StorageError(Kind kind, std::string path, const std::string& detail);

  const char* kindName() const;

  Kind kind;
  std::string path;
};

// Runtime fault state; thread-safe, shared process-wide for the duration of
// a chaos run so occurrence counters persist across recovery attempts
// (mirroring comm::FaultInjector's lifetime contract).
class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(StorageFaultPlan plan);

  // Consulted once per storage operation. Advances the occurrence counter
  // of every fault whose predicate matches and returns the first fault due
  // to fire (or nullopt for a clean operation).
  std::optional<StorageFault> onOp(StorageOp op, const std::string& path);

  StorageFaultStats stats() const;

 private:
  mutable std::mutex mutex_;
  StorageFaultPlan plan_;
  std::vector<uint64_t> matches_;  // per fault: predicate matches so far
  StorageFaultStats stats_;
};

// --- process-wide attachment (mirrors obs::attach) ---

// Current injector; nullptr when detached (the default — all primitives
// below are then plain durable I/O).
std::shared_ptr<StorageFaultInjector> storageFaults();
void attachStorageFaults(std::shared_ptr<StorageFaultInjector> injector);
void detachStorageFaults();

// RAII attach of a fresh injector for `plan`; restores the previous
// injector on destruction so scopes nest.
class ScopedStorageFaults {
 public:
  explicit ScopedStorageFaults(StorageFaultPlan plan);
  ScopedStorageFaults(const ScopedStorageFaults&) = delete;
  ScopedStorageFaults& operator=(const ScopedStorageFaults&) = delete;
  ~ScopedStorageFaults();

  const std::shared_ptr<StorageFaultInjector>& injector() const {
    return injector_;
  }
  StorageFaultStats stats() const { return injector_->stats(); }

 private:
  std::shared_ptr<StorageFaultInjector> injector_;
  std::shared_ptr<StorageFaultInjector> previous_;
};

// --- epoch write fence (split-brain protection) ---

// Process-attachable fencing token shared by every host thread of a
// simulated cluster. Quorum agreement (comm::Network::agreeMembership and
// the resilient driver) advances the cluster epoch and fences the hosts on
// the losing side of a network partition; the checkpoint store consults the
// fence BEFORE any write, so a fenced host can never clobber or
// buddy-replicate stale state — its writes are refused pre-I/O, leaving no
// torn debris for the GC to sweep. Fencing is sticky per host until
// lifted() at heal-time rejoin. Lives beside the storage-fault seam (and
// attaches the same way) because it guards the same choke point.
class WriteFence {
 public:
  // Monotone-max advance of the cluster fencing epoch. Returns the epoch
  // after the advance.
  uint64_t advance(uint64_t epoch);
  uint64_t epoch() const;

  void fence(uint32_t host);
  void lift(uint32_t host);
  bool isFenced(uint32_t host) const;
  std::vector<uint32_t> fencedHosts() const;

  // Writes refused because the writer was fenced (the zero-post-fence-
  // writes assertion of the split-brain tests reads this).
  uint64_t fencedWriteAttempts() const;
  void countFencedWriteAttempt();

 private:
  mutable std::mutex mutex_;
  uint64_t epoch_ = 0;
  std::vector<bool> fenced_;  // indexed by host id (grown on demand)
  uint64_t fencedWriteAttempts_ = 0;
};

// Current fence; nullptr when detached (the default — checkpoint writes are
// then unguarded, exactly the pre-split-brain behavior).
std::shared_ptr<WriteFence> writeFence();
void attachWriteFence(std::shared_ptr<WriteFence> fence);
void detachWriteFence();

// RAII attach of a fresh fence; restores the previous one on destruction so
// scopes nest (mirrors ScopedStorageFaults).
class ScopedWriteFence {
 public:
  ScopedWriteFence();
  ScopedWriteFence(const ScopedWriteFence&) = delete;
  ScopedWriteFence& operator=(const ScopedWriteFence&) = delete;
  ~ScopedWriteFence();

  const std::shared_ptr<WriteFence>& fence() const { return fence_; }

 private:
  std::shared_ptr<WriteFence> fence_;
  std::shared_ptr<WriteFence> previous_;
};

// --- primitives ---

// Durable atomic write of `size` bytes to `path` via the tmp + fsync +
// rename + directory-fsync commit protocol described above. Throws
// StorageError on failure (real or injected); on a kWriteFail/kEnospc/
// kRenameFail injection a torn or orphaned `<path>.tmp` is deliberately
// left behind, exactly as a crash would leave it.
void atomicWriteFile(const std::string& path, const void* data, size_t size);
void atomicWriteFile(const std::string& path,
                     const std::vector<uint8_t>& bytes);

// Whole-file read. nullopt when the file does not exist (or is concurrently
// truncated — indistinguishable from absent for our consumers); throws
// StorageError{kReadFailed} on an injected read failure. An injected
// kBitRot flips one deterministically chosen byte of the returned image.
std::optional<std::vector<uint8_t>> readFileBytes(const std::string& path);

// Bounded-window read: `length` bytes starting at `offset`. Same fault
// semantics as readFileBytes (each call counts as one kRead operation;
// kBitRot flips one byte of the returned window). nullopt when the file is
// missing or shorter than offset + length — windowed consumers size their
// requests from a validated header, so a short read means truncation.
std::optional<std::vector<uint8_t>> readFileRange(const std::string& path,
                                                  uint64_t offset,
                                                  uint64_t length);

// Seeded random storage-fault plan for the fuzzer: up to `maxFaults` faults
// over all six kinds, each pinned to one host's checkpoint files
// ("h<r>.p" path substring) so multi-threaded runs replay deterministically.
StorageFaultPlan randomStorageFaultPlan(uint64_t seed, uint32_t numHosts,
                                        uint32_t maxFaults = 4);

}  // namespace cusp::support
