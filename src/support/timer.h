// Wall-clock timers and named phase accounting.
//
// The partitioner reports a per-phase time breakdown (paper Fig. 4), so every
// phase is bracketed by a PhaseTimer scope that accumulates into a
// PhaseTimes table. Timers are plain wall-clock; on the simulated cluster all
// hosts share one machine, so the *maximum* across hosts of a phase time is
// what the benchmark harness reports (hosts run concurrently).
#pragma once

#include <ctime>

#include <chrono>
#include <map>
#include <string>
#include <vector>

namespace cusp::support {

// CPU time consumed by the calling thread. This is the basis of the
// simulated-cluster makespan model: host threads time-share one machine, so
// wall clocks measure the *sum* of all hosts' work; per-thread CPU time
// measures each host's own work, excluding time descheduled or blocked in
// receives. Combined with the Network's modeled communication charges and
// max-reduced across hosts at synchronization points, this yields the time
// the phase would take on a real cluster (up to per-core speed).
inline double threadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t elapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  Clock::time_point start_;
};

// Accumulated seconds per named phase, in insertion order.
class PhaseTimes {
 public:
  void add(const std::string& phase, double seconds) {
    auto it = index_.find(phase);
    if (it == index_.end()) {
      index_.emplace(phase, entries_.size());
      entries_.emplace_back(phase, seconds);
    } else {
      entries_[it->second].second += seconds;
    }
  }

  double get(const std::string& phase) const {
    auto it = index_.find(phase);
    return it == index_.end() ? 0.0 : entries_[it->second].second;
  }

  double total() const {
    double sum = 0.0;
    for (const auto& [name, secs] : entries_) {
      sum += secs;
    }
    return sum;
  }

  const std::vector<std::pair<std::string, double>>& entries() const {
    return entries_;
  }

  // Element-wise max against another table; used to combine per-host
  // breakdowns into the cluster-level breakdown (hosts run concurrently, so
  // the slowest host determines the phase time).
  void maxWith(const PhaseTimes& other) {
    for (const auto& [name, secs] : other.entries_) {
      auto it = index_.find(name);
      if (it == index_.end()) {
        index_.emplace(name, entries_.size());
        entries_.emplace_back(name, secs);
      } else if (secs > entries_[it->second].second) {
        entries_[it->second].second = secs;
      }
    }
  }

  void clear() {
    index_.clear();
    entries_.clear();
  }

 private:
  std::map<std::string, size_t> index_;
  std::vector<std::pair<std::string, double>> entries_;
};

// RAII scope that adds its lifetime to a PhaseTimes entry.
class PhaseTimer {
 public:
  PhaseTimer(PhaseTimes& table, std::string phase)
      : table_(table), phase_(std::move(phase)) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() { table_.add(phase_, timer_.elapsedSeconds()); }

 private:
  PhaseTimes& table_;
  std::string phase_;
  Timer timer_;
};

}  // namespace cusp::support
