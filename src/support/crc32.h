// CRC32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk integrity checks.
//
// The .cgr/.cdg/.ckpt file formats append an optional 16-byte footer
// {kCrcFooterMagic, crc32-of-preceding-bytes} so that silently corrupted
// bytes are caught on load, not just truncation and bad magic. The footer is
// backward compatible: readers verify it when present and accept legacy
// files without one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace cusp::support {

inline uint32_t crc32Update(uint32_t crc, const void* data, size_t len) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  const auto* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t crc32(const void* data, size_t len) {
  return crc32Update(0, data, len);
}

// Footer magic "CRC1" (little-endian u64, high bytes zero, matching the
// style of the CGR1/CDG1 file magics).
inline constexpr uint64_t kCrcFooterMagic = 0x0000000031435243ULL;
inline constexpr size_t kCrcFooterSize = 2 * sizeof(uint64_t);

// Appends {kCrcFooterMagic, crc32(bytes)} to `bytes`.
inline void appendCrcFooter(std::vector<uint8_t>& bytes) {
  const uint64_t crc = crc32(bytes.data(), bytes.size());
  const uint64_t footer[2] = {kCrcFooterMagic, crc};
  const size_t offset = bytes.size();
  bytes.resize(offset + sizeof(footer));
  std::memcpy(bytes.data() + offset, footer, sizeof(footer));
}

enum class CrcFooterStatus {
  kAbsent,    // legacy payload with no footer; nothing verified
  kVerified,  // footer present and checksum matched; footer stripped
  kMismatch,  // footer present but checksum failed
};

// Detects a trailing CRC footer on `bytes`; on a match strips it so the
// caller sees the bare payload. A payload shorter than a footer, or one
// whose tail is not the footer magic, is treated as legacy (kAbsent).
inline CrcFooterStatus verifyAndStripCrcFooter(std::vector<uint8_t>& bytes) {
  if (bytes.size() < kCrcFooterSize) {
    return CrcFooterStatus::kAbsent;
  }
  uint64_t footer[2];
  std::memcpy(footer, bytes.data() + bytes.size() - kCrcFooterSize,
              sizeof(footer));
  if (footer[0] != kCrcFooterMagic) {
    return CrcFooterStatus::kAbsent;
  }
  const size_t payloadSize = bytes.size() - kCrcFooterSize;
  const uint64_t expected = footer[1];
  if (crc32(bytes.data(), payloadSize) != expected) {
    return CrcFooterStatus::kMismatch;
  }
  bytes.resize(payloadSize);
  return CrcFooterStatus::kVerified;
}

}  // namespace cusp::support
