// The `prop` handle queried by user-defined partitioning rules.
//
// Paper Section III-A: "it is convenient to assume that there is a structure
// called prop that stores the number of desired partitions and the static
// properties of the graph such as the number of nodes and edges, the
// outgoing edges or neighbors of a node, and the out-degree of a node."
//
// GraphProperties is backed by the on-disk CSR graph (GraphFile), which all
// hosts can query — the real system serves these queries from the
// disk-resident index arrays. It is immutable and shared read-only across
// host threads.
#pragma once

#include <cstdint>
#include <span>

#include "graph/graph_file.h"

namespace cusp::core {

class GraphProperties {
 public:
  GraphProperties(const graph::GraphFile& file, uint32_t numPartitions)
      : file_(&file), numPartitions_(numPartitions) {}

  uint64_t getNumNodes() const { return file_->numNodes(); }
  uint64_t getNumEdges() const { return file_->numEdges(); }
  uint32_t getNumPartitions() const { return numPartitions_; }

  uint64_t getNodeOutDegree(uint64_t node) const {
    return file_->outDegree(node);
  }

  // Global id of the node's k-th outgoing edge (paper's
  // prop.getNodeOutEdge(nodeId, k); ContiguousEB uses k = 0).
  uint64_t getNodeOutEdge(uint64_t node, uint64_t k) const {
    return file_->firstOutEdge(node) + k;
  }

  std::span<const uint64_t> getNodeOutNeighbors(uint64_t node) const {
    return file_->outNeighbors(node);
  }

  const graph::GraphFile& file() const { return *file_; }

 private:
  const graph::GraphFile* file_;
  uint32_t numPartitions_;
};

}  // namespace cusp::core
