#include "core/dist_graph.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "support/crc32.h"
#include "support/serialize.h"

namespace cusp::core {

std::vector<graph::Edge> DistGraph::edgesWithGlobalIds() const {
  std::vector<graph::Edge> edges;
  edges.reserve(graph.numEdges());
  for (uint64_t u = 0; u < graph.numNodes(); ++u) {
    for (uint64_t e = graph.edgeBegin(u); e < graph.edgeEnd(u); ++e) {
      const uint64_t v = graph.edgeDst(e);
      graph::Edge edge{localToGlobal[u], localToGlobal[v], graph.edgeData(e)};
      if (isTransposed) {
        std::swap(edge.src, edge.dst);
      }
      edges.push_back(edge);
    }
  }
  return edges;
}

PartitionQuality computeQuality(std::span<const DistGraph> partitions) {
  PartitionQuality q;
  if (partitions.empty()) {
    return q;
  }
  q.minLocalNodes = UINT64_MAX;
  q.minLocalEdges = UINT64_MAX;
  uint64_t totalEdges = 0;
  for (const DistGraph& part : partitions) {
    const uint64_t nodes = part.numLocalNodes();
    const uint64_t edges = part.numLocalEdges();
    q.totalProxies += nodes;
    q.totalMasters += part.numMasters;
    q.minLocalNodes = std::min(q.minLocalNodes, nodes);
    q.maxLocalNodes = std::max(q.maxLocalNodes, nodes);
    q.minLocalEdges = std::min(q.minLocalEdges, edges);
    q.maxLocalEdges = std::max(q.maxLocalEdges, edges);
    totalEdges += edges;
  }
  const uint64_t numGlobalNodes = partitions.front().numGlobalNodes;
  if (numGlobalNodes > 0) {
    q.avgReplicationFactor = static_cast<double>(q.totalProxies) /
                             static_cast<double>(numGlobalNodes);
  }
  const double avgNodes = static_cast<double>(q.totalProxies) /
                          static_cast<double>(partitions.size());
  const double avgEdges =
      static_cast<double>(totalEdges) / static_cast<double>(partitions.size());
  q.nodeImbalance = avgNodes > 0 ? static_cast<double>(q.maxLocalNodes) / avgNodes : 0;
  q.edgeImbalance = avgEdges > 0 ? static_cast<double>(q.maxLocalEdges) / avgEdges : 0;
  return q;
}

std::vector<graph::Edge> gatherAllEdges(
    std::span<const DistGraph> partitions) {
  std::vector<graph::Edge> all;
  for (const DistGraph& part : partitions) {
    auto edges = part.edgesWithGlobalIds();
    all.insert(all.end(), edges.begin(), edges.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

namespace {

constexpr uint64_t kDistGraphMagic = 0x0000000031474443ULL;  // "CDG1"

[[noreturn]] void fail(const std::string& what) {
  throw std::logic_error("validatePartitions: " + what);
}

}  // namespace

void serializeDistGraph(support::SendBuffer& buf, const DistGraph& part) {
  support::serializeAll(
      buf, kDistGraphMagic, part.hostId, part.numHosts, part.numGlobalNodes,
      part.numGlobalEdges, static_cast<uint8_t>(part.isTransposed),
      part.numMasters, part.localToGlobal, part.masterHostOfLocal);
  support::serializeAll(
      buf,
      std::vector<uint64_t>(part.graph.rowStarts().begin(),
                            part.graph.rowStarts().end()),
      std::vector<uint64_t>(part.graph.destinations().begin(),
                            part.graph.destinations().end()),
      std::vector<uint32_t>(part.graph.edgeDataArray().begin(),
                            part.graph.edgeDataArray().end()));
  support::serializeAll(buf, part.mirrorsOnHost, part.myMirrorsByOwner);
}

DistGraph deserializeDistGraph(support::RecvBuffer& buf) {
  uint64_t magic = 0;
  DistGraph part;
  uint8_t transposed = 0;
  support::deserializeAll(buf, magic, part.hostId, part.numHosts,
                          part.numGlobalNodes, part.numGlobalEdges,
                          transposed, part.numMasters, part.localToGlobal,
                          part.masterHostOfLocal);
  if (magic != kDistGraphMagic) {
    throw std::runtime_error("bad magic");
  }
  part.isTransposed = transposed != 0;
  std::vector<uint64_t> rowStart;
  std::vector<uint64_t> dests;
  std::vector<uint32_t> edgeData;
  support::deserializeAll(buf, rowStart, dests, edgeData);
  part.graph = graph::CsrGraph(std::move(rowStart), std::move(dests),
                               std::move(edgeData));
  support::deserializeAll(buf, part.mirrorsOnHost, part.myMirrorsByOwner);
  part.globalToLocal.reserve(part.localToGlobal.size());
  for (uint64_t lid = 0; lid < part.localToGlobal.size(); ++lid) {
    part.globalToLocal.emplace(part.localToGlobal[lid], lid);
  }
  if (part.numMasters > part.numLocalNodes() ||
      part.masterHostOfLocal.size() != part.numLocalNodes() ||
      part.graph.numNodes() != part.numLocalNodes() ||
      part.mirrorsOnHost.size() != part.numHosts ||
      part.myMirrorsByOwner.size() != part.numHosts) {
    throw std::runtime_error("inconsistent sizes");
  }
  return part;
}

void saveDistGraph(const std::string& path, const DistGraph& part) {
  support::SendBuffer buf;
  serializeDistGraph(buf, part);
  std::vector<uint8_t> bytes = buf.release();
  support::appendCrcFooter(bytes);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("saveDistGraph: cannot create " + path);
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool ok = written == bytes.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("saveDistGraph: short write to " + path);
  }
}

DistGraph loadDistGraph(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("loadDistGraph: cannot open " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  const size_t read = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (read != bytes.size()) {
    throw std::runtime_error("loadDistGraph: short read from " + path);
  }
  if (support::verifyAndStripCrcFooter(bytes) ==
      support::CrcFooterStatus::kMismatch) {
    throw std::runtime_error("loadDistGraph: checksum mismatch in " + path);
  }
  support::RecvBuffer buf(std::move(bytes));
  // Truncated or corrupt files surface as deserialization/validation
  // errors; report them uniformly as a file-level failure.
  try {
    DistGraph part = deserializeDistGraph(buf);
    if (!buf.exhausted()) {
      throw std::runtime_error("trailing bytes");
    }
    return part;
  } catch (const std::exception& e) {
    throw std::runtime_error("loadDistGraph: corrupt file " + path + " (" +
                             e.what() + ")");
  }
}

void validatePartitions(const graph::CsrGraph& original,
                        std::span<const DistGraph> partitions,
                        bool checkEdgeMultiset) {
  if (partitions.empty()) {
    fail("no partitions");
  }
  const uint64_t numGlobal = original.numNodes();
  const uint32_t numHosts = static_cast<uint32_t>(partitions.size());
  std::vector<uint32_t> masterCount(numGlobal, 0);
  std::vector<uint32_t> masterHost(numGlobal, UINT32_MAX);

  for (uint32_t h = 0; h < numHosts; ++h) {
    const DistGraph& part = partitions[h];
    if (part.hostId != h || part.numHosts != numHosts) {
      fail("host id / host count mismatch on host " + std::to_string(h));
    }
    if (part.numGlobalNodes != numGlobal) {
      fail("global node count mismatch on host " + std::to_string(h));
    }
    if (part.masterHostOfLocal.size() != part.numLocalNodes()) {
      fail("masterHostOfLocal size mismatch on host " + std::to_string(h));
    }
    if (part.graph.numNodes() != part.numLocalNodes()) {
      fail("local CSR node count mismatch on host " + std::to_string(h));
    }
    // Layout: masters sorted, then mirrors sorted; globalToLocal inverse.
    for (uint64_t lid = 0; lid < part.numLocalNodes(); ++lid) {
      const uint64_t gid = part.localToGlobal[lid];
      if (gid >= numGlobal) {
        fail("global id out of range on host " + std::to_string(h));
      }
      auto found = part.localIdOf(gid);
      if (!found || *found != lid) {
        fail("globalToLocal not inverse of localToGlobal on host " +
             std::to_string(h));
      }
      if (lid + 1 < part.numLocalNodes() && lid + 1 != part.numMasters &&
          part.localToGlobal[lid + 1] <= gid) {
        fail("local ids not sorted by global id within segment on host " +
             std::to_string(h));
      }
      if (part.isMaster(lid)) {
        if (part.masterHostOfLocal[lid] != h) {
          fail("master proxy with foreign master host on host " +
               std::to_string(h));
        }
        ++masterCount[gid];
        masterHost[gid] = h;
      } else if (part.masterHostOfLocal[lid] == h) {
        fail("mirror claims to be owned by its own host " + std::to_string(h));
      }
    }
  }
  for (uint64_t v = 0; v < numGlobal; ++v) {
    if (masterCount[v] != 1) {
      fail("vertex " + std::to_string(v) + " has " +
           std::to_string(masterCount[v]) + " masters (expected 1)");
    }
  }
  // Mirrors must point at the true master host, and the cross-host metadata
  // must pair up: a.mirrorsOnHost[b] == b.myMirrorsByOwner[a] (as gids).
  for (uint32_t h = 0; h < numHosts; ++h) {
    const DistGraph& part = partitions[h];
    if (part.mirrorsOnHost.size() != numHosts ||
        part.myMirrorsByOwner.size() != numHosts) {
      fail("sync metadata size mismatch on host " + std::to_string(h));
    }
    for (uint64_t lid = part.numMasters; lid < part.numLocalNodes(); ++lid) {
      if (part.masterHostOfLocal[lid] != masterHost[part.localToGlobal[lid]]) {
        fail("mirror has wrong master host on host " + std::to_string(h));
      }
    }
    for (uint32_t owner = 0; owner < numHosts; ++owner) {
      for (uint64_t lid : part.myMirrorsByOwner[owner]) {
        if (part.isMaster(lid) || part.masterHostOfLocal[lid] != owner) {
          fail("myMirrorsByOwner inconsistent on host " + std::to_string(h));
        }
      }
    }
  }
  for (uint32_t a = 0; a < numHosts; ++a) {
    for (uint32_t b = 0; b < numHosts; ++b) {
      const auto& broadcastSide = partitions[a].mirrorsOnHost[b];
      const auto& reduceSide = partitions[b].myMirrorsByOwner[a];
      if (broadcastSide.size() != reduceSide.size()) {
        fail("mirror metadata size disagrees between hosts " +
             std::to_string(a) + " and " + std::to_string(b));
      }
      for (size_t i = 0; i < broadcastSide.size(); ++i) {
        if (partitions[a].localToGlobal[broadcastSide[i]] !=
            partitions[b].localToGlobal[reduceSide[i]]) {
          fail("mirror metadata order disagrees between hosts " +
               std::to_string(a) + " and " + std::to_string(b));
        }
      }
    }
  }
  if (checkEdgeMultiset) {
    std::vector<graph::Edge> expected = original.toEdges();
    std::sort(expected.begin(), expected.end());
    const std::vector<graph::Edge> actual = gatherAllEdges(partitions);
    if (expected != actual) {
      fail("partitioned edge multiset differs from the input graph (" +
           std::to_string(actual.size()) + " vs " +
           std::to_string(expected.size()) + " edges)");
    }
  }
}

}  // namespace cusp::core
