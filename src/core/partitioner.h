// The CuSP streaming edge partitioner: five phases over a simulated
// distributed cluster (paper Section IV-B, Fig. 2):
//
//   1. Graph reading      — each host loads a contiguous, edge-balanced
//                           window of the on-disk CSR into memory.
//   2. Master assignment  — getMaster over read vertices; masters and
//                           partitioning state synchronized in periodic
//                           rounds (skipped entirely for pure rules).
//   3. Edge assignment    — getEdgeOwner over read edges; per-host outgoing
//                           edge counts (positional vectors, IV-D2) and
//                           createMirror flags exchanged.
//   4. Graph allocation   — local CSR memory allocated up front from the
//                           received counts; global->local maps built;
//                           partitioning state reset.
//   5. Graph construction — edges re-streamed and shipped in large buffered
//                           messages (IV-D3) to their owners, inserted in
//                           parallel with atomic per-row cursors while a
//                           dedicated receiver thread drains the network
//                           (IV-D1); optional in-memory transpose to CSC.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/network.h"
#include "core/dist_graph.h"
#include "core/policies.h"
#include "graph/graph_file.h"
#include "support/cancel.h"
#include "support/memory.h"
#include "support/timer.h"

namespace cusp::core {

// Run-scoped checkpoint-store health, shared by every host of a run and by
// every recovery attempt (config copies alias the same object). A failed
// checkpoint write never fails the phase — the run just loses one restart
// point — but a persistent ENOSPC latches `disabled`, switching the rest of
// the run into an explicit uncheckpointed continuation (a full disk will
// not heal by writing four more phases into it).
struct CheckpointHealth {
  std::atomic<bool> disabled{false};
  std::atomic<uint32_t> writeFailures{0};
};

// Fault-tolerance knobs; everything off by default, in which case the
// partitioner's behavior (messages, bytes, outputs) is identical to a
// build without any of the fault machinery.
struct ResilienceConfig {
  // Directory for per-phase checkpoints (h<host>.p<phase>.ckpt). Hosts
  // checkpoint after each completed phase and partitionGraphResilient
  // restarts crashed runs from the last phase completed by EVERY host.
  // Empty or enableCheckpoints=false disables checkpointing.
  std::string checkpointDir;
  bool enableCheckpoints = false;

  // How many times partitionGraphResilient re-runs the pipeline after a
  // fault exception before giving up and rethrowing.
  uint32_t maxRecoveryAttempts = 3;

  // Bounds every blocking receive; on expiry the receive throws
  // NetworkStalled naming each blocked host and its tag, instead of
  // hanging. <= 0 = unbounded (the default).
  double recvTimeoutSeconds = 0.0;

  // Deterministic fault plan to inject (drops/duplicates/delays/crashes);
  // null or empty = clean network.
  std::shared_ptr<const comm::FaultPlan> faultPlan;

  // Deterministic memory-fault plan (support/memory.h): allocation refusals
  // and budget shrinks injected into the budget the entry points attach
  // when memoryBudgetBytes > 0. Ignored when a budget is already attached
  // process-wide (the pre-attached budget keeps its own plan). Null or
  // empty = clean budget.
  std::shared_ptr<const support::MemoryFaultPlan> memoryFaultPlan;

  // Retry budget for dropped messages (Network::sendReliable).
  comm::RetryPolicy retry;

  // Degraded completion after PERMANENT host loss (core/degraded.h): when a
  // host that will never reboot crashes, evict it from the membership and
  // finish on the survivors — either by redistributing phase-5 checkpoint
  // state (buddyReplication below) or by re-partitioning over the shrunk
  // host set — instead of rethrowing once the attempt budget is spent.
  // Strictly opt-in: off, permanent crashes burn the retry budget exactly
  // like transient ones and outputs are unchanged.
  bool degradedMode = false;

  // Mirror every checkpoint to the host's ring successor
  // (h<buddy>.p<phase>.buddy<owner>.ckpt) so a dead host's phase state
  // survives the loss of its local store. Needs enableCheckpoints. Off by
  // default: no replica files are written and restores never consult them.
  bool buddyReplication = false;

  // Straggler deadlines (comm::StragglerPolicy): receivers blocked on one
  // slow peer past the soft deadline emit blame reports through obs; a
  // peer over the hard deadline is condemned and — with degradedMode on —
  // evicted into the degraded paths like a permanent crash, except that
  // its checkpoint store stays readable (the machine is slow, not dead).
  comm::StragglerPolicy straggler;

  // Age threshold (seconds) before the driver's startup GC sweeps
  // .quarantined checkpoint files; orphaned .tmp commit debris is always
  // swept regardless of age. Exposed so operators (and tests) can tighten
  // the forensic-retention window (--checkpoint-gc-age).
  double checkpointGcAgeSeconds = 24.0 * 3600.0;

  // Cooperative cancellation (support/cancel.h): when set, every host
  // checks the token at phase boundaries and the resilient driver checks
  // it before starting another attempt. An expired token unwinds the run
  // with support::JobCancelled, which classifyFault does NOT treat as a
  // fault — so it propagates to the caller immediately instead of burning
  // recovery attempts. Null (the default) never cancels.
  std::shared_ptr<support::CancelToken> cancel;

  // Checkpoint-store health latch (see CheckpointHealth above). Allocated
  // per config; copies alias it, so the driver's retries and every host of
  // the run observe the same latch. The latch lives as long as the config
  // object: reusing one config for several runs deliberately keeps an
  // ENOSPC verdict (the disk is still full).
  std::shared_ptr<CheckpointHealth> checkpointHealth =
      std::make_shared<CheckpointHealth>();
};

// One membership eviction performed by the degraded-mode driver.
struct EvictionRecord {
  uint32_t host = 0;   // ORIGINAL host id of the evicted host
  uint32_t phase = 0;  // pipeline phase of the fatal failure (0 = outside)
  uint64_t epoch = 0;  // driver membership epoch after this eviction
  // Path A succeeded: survivors redistributed phase-5 checkpoint state
  // instead of re-partitioning.
  bool redistributed = false;
  // The dead host's buddy replica was unavailable (typically because the
  // buddy died too); the driver fell back to a full re-partition.
  bool replicaLost = false;
};

// A slice of an evicted host's old read window that a survivor re-reads in
// the degraded re-partition (Path B). Hosts are ORIGINAL ids; node/edge
// bounds are global CSR coordinates.
struct AdoptedEdgeRange {
  uint32_t survivor = 0;
  uint32_t evicted = 0;
  uint64_t nodeBegin = 0, nodeEnd = 0;
  uint64_t edgeBegin = 0, edgeEnd = 0;
};

// What partitionGraphResilient did to produce its result.
struct RecoveryReport {
  uint32_t attempts = 0;  // pipeline runs, including the successful one
  // what() of every fault exception that triggered a re-run, in order.
  std::vector<std::string> failures;
  // Classified kind of each entry of `failures` (parallel vector):
  // "HostFailure" | "NetworkStalled" | "SendRetriesExhausted" |
  // "HostEvicted" (core/degraded.h).
  std::vector<std::string> failureKinds;
  // Resume phase of the final attempt: the pipeline restarted after this
  // phase (0 = ran from scratch).
  uint32_t resumedFromPhase = 0;

  // Degraded mode only (empty/zero otherwise):
  std::vector<EvictionRecord> evictions;
  std::vector<AdoptedEdgeRange> adoptedRanges;
  // Modeled bytes of graph file re-read by survivors beyond their own old
  // windows during degraded re-partitions (row offsets + destinations +
  // edge data of the newly adopted slices).
  uint64_t bytesReRead = 0;
  // Bytes of buddy-replica checkpoint payloads consumed by Path A.
  uint64_t replicaBytesRead = 0;
  // Host count of the returned partition set (== config.numHosts unless
  // evictions shrank the cluster).
  uint32_t finalNumHosts = 0;

  // Storage-fault outcomes: checkpoint writes that failed and were absorbed
  // (the phase continued uncheckpointed), and whether a persistent ENOSPC
  // flipped the run into checkpointing-disabled continuation mode.
  uint32_t checkpointWriteFailures = 0;
  bool checkpointingDisabledByEnospc = false;
  // Soft straggler reports accumulated by the run's StragglerMonitor.
  uint64_t stragglerSoftReports = 0;

  // Memory-governor outcomes (zero without a budget): MemoryPressure faults
  // the degradation ladder absorbed, cumulative bytes spilled to disk, and
  // the budget's high-water mark over the whole run.
  uint32_t memoryPressureEvents = 0;
  uint64_t spillBytesWritten = 0;
  uint64_t memoryPeakBytes = 0;

  // Split-brain outcomes (zero/empty without partition events): partition
  // events the driver resolved under the quorum rule, ORIGINAL ids of the
  // minority hosts fenced by those events, the subset that later healed and
  // rejoined via checkpoint redistribution, and checkpoint writes refused
  // by the fencing token (asserted zero debris through the storage seam).
  uint32_t partitionEvents = 0;
  std::vector<uint32_t> fencedHosts;
  std::vector<uint32_t> rejoinedHosts;
  uint64_t fencedWriteAttempts = 0;
};

struct PartitionerConfig {
  uint32_t numHosts = 4;

  // Message-buffering threshold for graph construction (paper IV-D3;
  // evaluation default 8 MB, Fig. 7 sweeps it). 0 = send immediately.
  size_t messageBufferThreshold = 8ull << 20;

  // Number of synchronization rounds in the master-assignment phase for
  // stateful policies (paper IV-D4/V-D2; evaluation default 100).
  uint32_t stateSyncRounds = 100;

  // Reading-split importance weights (paper IV-B1: command-line arguments
  // balancing nodes and/or edges). The default (0, 1) uses the paper's
  // ContiguousEB-aligned edge-balanced split, which makes EEC
  // communication-free; any other combination uses a weighted split.
  double readNodeWeight = 0.0;
  double readEdgeWeight = 1.0;

  // Produce the partition in CSC orientation (in-memory transpose after
  // construction; paper IV-B5).
  bool buildTranspose = false;

  // Intra-host parallelism for the assignment/construction loops.
  unsigned threadsPerHost = 1;

  // Compress graph-construction edge batches: each record's destinations
  // are sorted and delta+varint coded (rows are canonically sorted after
  // construction anyway, so per-record sorting is free). Cuts the
  // construction-phase volume severalfold on dense id spaces; ablated in
  // bench_ablation_optimizations.
  bool compressEdgeBatches = false;

  // Streaming-window mode (the ADWISE class of paper Section II-B2, left
  // as future work there): when > 1 and the edge rule provides a
  // windowScore, each host keeps a window of this many scanned edges and
  // repeatedly assigns the highest-scoring one instead of the next edge in
  // stream order. 0/1 = plain streaming.
  uint32_t windowSize = 0;

  // Ablation switch: when true, pure master rules are NOT detected and the
  // full stateful machinery runs (request/assignment exchanges, master-list
  // exchange) even though every host could just recompute the assignments.
  // Results are identical; only cost changes. This isolates the paper's
  // replicate-computation-instead-of-communication optimization (IV-D5).
  bool disablePureMasterOptimization = false;

  // Interconnect cost model for the simulated cluster (per-message
  // overhead and bandwidth); zero-cost by default.
  comm::NetworkCostModel networkCostModel;

  // Send-aggregation override for this run's networks. Unset = the
  // process-wide default (comm::defaultAggregation(), aggregation ON with a
  // 1400-byte packet cap); set to {.enabled = false} to force the legacy
  // per-message path, or customize packetBytes / maxAgeSeconds.
  std::optional<comm::AggregationPolicy> aggregation;

  // Simulated per-host disk bandwidth for the graph-reading phase, in
  // MB/s; 0 disables throttling. The simulation's "disk" is host memory,
  // so without this knob reading is a memcpy and the reading-dominated
  // profile of communication-free policies (paper Fig. 4, EEC) cannot
  // appear. Hosts read their windows concurrently, as on a parallel
  // filesystem.
  double simulatedDiskBandwidthMBps = 0.0;

  // ---- memory governor (support/memory.h) --------------------------------

  // Hard per-process memory budget in bytes; 0 = unbudgeted (every code
  // path identical to a build without the governor). When set, the
  // partitioning entry points attach a process-wide support::MemoryBudget
  // for the duration of the run (unless one is already attached, e.g. by
  // the --memory-budget CLI), hot containers charge it, and over-budget
  // reservations surface as support::MemoryPressure — which
  // partitionGraphResilient degrades through instead of dying.
  uint64_t memoryBudgetBytes = 0;

  // Force bounded-window streaming in the reading phase even when the
  // window would fit the budget (or no budget is attached): later phases
  // re-stream the host's edge window in node-aligned chunks of
  // streamChunkEdges edges instead of keeping it resident. First rung of
  // the degradation ladder; also useful for testing. Partitions are
  // bit-identical to resident-window runs for deterministic policies.
  bool forceStreamingWindows = false;

  // Directory for spilled cold state (delta+varint-compressed edge-window
  // segments, support/memory.h codec). Empty = no spill: streaming re-reads
  // chunks from the GraphFile each pass. Second rung of the ladder — the
  // resilient driver points this into <checkpointDir>/spill when pressure
  // persists with streaming on.
  std::string spillDir;

  // Edges per streaming chunk (node-aligned; a node with a larger degree
  // gets a chunk of its own). Third rung: the driver halves this under
  // repeated pressure. Chunk size changes processing granularity only,
  // never output.
  uint64_t streamChunkEdges = 1ull << 16;

  // Fault-tolerance knobs (fault injection, recv timeouts, checkpoints,
  // retry); all off by default. partitionGraph honors the injection/
  // timeout/retry/checkpoint knobs; the recovery loop lives in
  // partitionGraphResilient.
  ResilienceConfig resilience;
};

struct PartitionResult {
  std::vector<DistGraph> partitions;
  // Per-phase simulated cluster times: each host accounts its own CPU work
  // plus modeled communication/disk charges; the table holds the
  // element-wise max across hosts (phases are barrier-separated).
  support::PhaseTimes phaseTimes;
  // Cross-host traffic for the whole run, by tag.
  comm::VolumeStats volume;
  // Simulated cluster makespan: sum over phases of the slowest host's time.
  double totalSeconds = 0.0;
  // Actual wall-clock of the simulation on this machine (all host threads
  // time-share the local cores; useful for sanity only).
  double wallSeconds = 0.0;
};

// Runs the full pipeline: spins up config.numHosts simulated hosts,
// partitions `file` under `policy`, and returns all partitions plus timing
// and communication statistics.
PartitionResult partitionGraph(const graph::GraphFile& file,
                               const PartitionPolicy& policy,
                               const PartitionerConfig& config);

// CSC-reading variant (paper Section III-B: every policy has a CSR and a
// CSC variant — PowerLyra's HVC/GVC are the CSC ones, whose heuristics see
// in-degrees/in-edges). `cscFile` must hold the TRANSPOSE of the logical
// graph on disk (use the converters); the partitioner streams it exactly
// like a CSR file, so "out" in every rule means "in" of the logical graph.
// The returned partitions are labeled with the logical orientation:
// without config.buildTranspose their local rows are in-edges
// (isTransposed = true); with it, the in-memory transpose restores out-edge
// rows (isTransposed = false), ready for the analytics engine.
PartitionResult partitionGraphCsc(const graph::GraphFile& cscFile,
                                  const PartitionPolicy& policy,
                                  const PartitionerConfig& config);

// Fault-tolerant driver: runs the pipeline like partitionGraph, but when a
// fault exception escapes (an injected HostFailure, a receive timeout, or
// exhausted send retries) it tears the cluster down and re-runs, resuming
// from the last phase every host holds a valid checkpoint for (see
// core/checkpoint.h; without checkpoints enabled a re-run starts from
// scratch). The same FaultInjector is shared across attempts, so a crash
// fires exactly once and the re-run proceeds past it. Gives up after
// config.resilience.maxRecoveryAttempts runs and rethrows the last fault.
// For deterministic policies the recovered result is bit-identical to a
// fault-free run.
//
// With resilience.degradedMode on, a PERMANENT crash (HostCrash::permanent)
// is handled by eviction instead: the dead host leaves the membership and
// the survivors finish — redistributing phase-5 checkpoint state when buddy
// replicas make that possible (Path A), or re-partitioning over the shrunk
// host set with the dead host's edge window re-read and split across the
// survivors (Path B). The result then spans fewer hosts than
// config.numHosts; the report's evictions/adoptedRanges/finalNumHosts
// describe what happened.
PartitionResult partitionGraphResilient(const graph::GraphFile& file,
                                        const PartitionPolicy& policy,
                                        const PartitionerConfig& config,
                                        RecoveryReport* report = nullptr);

// Host-level entry point for callers that already run inside a Network
// (e.g. an analytics pipeline that partitions and then computes without
// leaving the simulated cluster). Collective: all hosts must call it.
DistGraph partitionOnHost(comm::Network& net, comm::HostId me,
                          const graph::GraphFile& file,
                          const PartitionPolicy& policy,
                          const PartitionerConfig& config,
                          support::PhaseTimes& phaseTimes);

}  // namespace cusp::core
