#include "core/partitioner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_map>

#include "core/checkpoint.h"
#include "core/degraded.h"
#include "obs/obs.h"
#include "support/bitset.h"
#include "support/logging.h"
#include "support/storage.h"
#include "support/prefix_sum.h"
#include "support/threading.h"
#include "support/varint.h"

namespace cusp::core {

namespace {

using comm::HostId;
using graph::ReadRange;
using support::DynamicBitset;
using support::RecvBuffer;
using support::SendBuffer;

// One host's partitioning job; phase methods run in order and share state
// through the members. All inter-host data moves through `net`.
class PartitionJob {
 public:
  PartitionJob(comm::Network& net, HostId me, const graph::GraphFile& file,
               const PartitionPolicy& policy, const PartitionerConfig& config,
               support::PhaseTimes& phaseTimes)
      : net_(net),
        me_(me),
        file_(file),
        policy_(policy),
        config_(config),
        phaseTimes_(phaseTimes),
        prop_(file, net.numHosts()) {
    for (const auto& counter : policy.master.stateCounters) {
      state_.registerCounter(counter);
    }
    for (const auto& counter : policy.edge.stateCounters) {
      state_.registerCounter(counter);
    }
    if (policy.master.usesNodeMasks || policy.edge.usesNodeMasks) {
      state_.enableNodeMasks();
    }
    state_.initialize(net.numHosts());
    if (obs::attached()) {
      const obs::Sink sink = obs::sink();
      trace_ = sink.trace;
      metrics_ = sink.metrics;
    }
    if (support::memoryBudgetAttached()) {
      budget_ = support::memoryBudget();
    }
  }

  ~PartitionJob() {
    if (budget_ && windowChargeBytes_ > 0) {
      budget_->release(windowChargeBytes_);
    }
  }

  DistGraph run() {
    // Each phase is timed as this host's CPU work plus its modeled
    // communication charges (plus modeled disk time for reading); the
    // driver max-combines the per-host tables, and phases are separated by
    // barriers, so the sum of the maxima is the simulated cluster
    // makespan. (The construction phase's dedicated receiver thread is not
    // CPU-accounted: it models the communication hyperthread of paper
    // IV-D1, which overlaps computation.)
    //
    // With checkpointing on, hosts first agree on the last phase EVERY host
    // holds a valid checkpoint for (min across hosts — a crashed run leaves
    // hosts at different phases) and the pipeline resumes after it; skipped
    // phases run no barriers, so all hosts stay collectively aligned.
    uint32_t resumePhase = 0;
    if (checkpointing()) {
      const uint32_t mine = latestValidCheckpoint(
          config_.resilience.checkpointDir, me_, numHosts(), 5);
      resumePhase = net_.allReduceMin(me_, mine);
    }
    if (resumePhase >= 5) {
      restoreCheckpoint(5);
      return std::move(result_);
    }
    if (resumePhase == 0) {
      runPhase(1, "Graph Reading", [&] { phaseGraphReading(); });
    } else {
      // Graph reading has no communication and its window arrays are large
      // and deterministic, so they are never checkpointed: re-run it
      // locally, then restore the agreed checkpoint on top.
      timedPhase("Graph Reading", [&] { phaseGraphReading(); });
      restoreCheckpoint(resumePhase);
    }
    if (resumePhase < 2) {
      runPhase(2, "Master Assignment", [&] { phaseMasterAssignment(); });
    }
    if (resumePhase < 3) {
      runPhase(3, "Edge Assignment", [&] { phaseEdgeAssignment(); });
    }
    if (resumePhase < 4) {
      runPhase(4, "Graph Allocation", [&] { phaseGraphAllocation(); });
    }
    runPhase(5, "Graph Construction", [&] { phaseGraphConstruction(); });
    return std::move(result_);
  }

 private:
  template <typename Fn>
  void timedPhase(const char* name, Fn&& body) {
    obs::ScopedSpan span(trace_.get(), me_, name);
    const double cpu0 = support::threadCpuSeconds();
    const double comm0 = net_.modeledCommSeconds(me_);
    const double disk0 = modeledDiskSeconds_;
    body();
    phaseTimes_.add(name, (support::threadCpuSeconds() - cpu0) +
                              (net_.modeledCommSeconds(me_) - comm0) +
                              (modeledDiskSeconds_ - disk0));
    mirrorMemGauges();
  }

  // Samples the network backlog into the budget and mirrors the governor's
  // accounting into cusp.mem.* gauges at every phase boundary. Gauges are
  // last-write-wins, so concurrent hosts racing on them is fine — they all
  // read the same process-wide budget.
  void mirrorMemGauges() {
    if (!budget_) {
      return;
    }
    budget_->noteCommBacklog(net_.mailboxBacklogBytes());
    if (!metrics_) {
      return;
    }
    const support::MemoryBudgetStats s = budget_->stats();
    metrics_->gauge("cusp.mem.budget_bytes")
        .set(static_cast<double>(s.totalBytes));
    metrics_->gauge("cusp.mem.in_use_bytes")
        .set(static_cast<double>(s.inUseBytes));
    metrics_->gauge("cusp.mem.peak_bytes")
        .set(static_cast<double>(s.peakBytes));
    metrics_->gauge("cusp.mem.spill_bytes")
        .set(static_cast<double>(s.spillBytes));
    metrics_->gauge("cusp.mem.comm_backlog_bytes")
        .set(static_cast<double>(s.commBacklogBytes));
  }

  // One pipeline phase: announce it to the fault injector (phase-scheduled
  // crashes; the explicit fault point gives opsIntoPhase=0 a crossing even
  // in communication-free phases), run the body, checkpoint the completed
  // phase, and barrier. The barrier guarantees that once any host starts
  // phase p+1, every host holds a phase-p checkpoint.
  template <typename Fn>
  void runPhase(uint32_t phase, const char* name, Fn&& body) {
    if (const auto& cancel = config_.resilience.cancel) {
      cancel->check("partition phase " + std::to_string(phase));
    }
    net_.enterPhase(me_, phase);
    net_.faultPoint(me_);
    timedPhase(name, std::forward<Fn>(body));
    if (checkpointing()) {
      writeCheckpoint(phase);
    }
    net_.barrier(me_);
  }

  // ---- per-phase checkpoints (core/checkpoint.h) -------------------------

  bool checkpointing() const {
    return config_.resilience.enableCheckpoints &&
           !config_.resilience.checkpointDir.empty();
  }

  void writeCheckpoint(uint32_t phase) {
    const auto& health = config_.resilience.checkpointHealth;
    if (health && health->disabled.load(std::memory_order_relaxed)) {
      return;  // earlier persistent ENOSPC: explicit no-checkpoint mode
    }
    SendBuffer payload;
    switch (phase) {
      case 1:
        break;  // marker only: reading is re-run locally on resume
      case 2:
        serializeMasterSection(payload);
        break;
      case 3:
        serializeMasterSection(payload);
        serializeEdgeSection(payload);
        break;
      case 4:
        serializeMasterSection(payload);
        serializeAllocSection(payload);
        break;
      case 5:
        serializeDistGraph(payload, result_);
        break;
    }
    try {
      saveCheckpoint(config_.resilience.checkpointDir, me_, numHosts(), phase,
                     payload);
      if (config_.resilience.buddyReplication) {
        // Mirror to the ring successor's store so this host's phase state
        // survives the loss of its own (core/checkpoint.h).
        saveCheckpointReplica(config_.resilience.checkpointDir, me_,
                              numHosts(), phase, payload);
      }
    } catch (const support::StorageError& e) {
      // A failed checkpoint never fails the phase — the run just loses one
      // restart point. Persistent ENOSPC latches the run-level disable.
      if (health) {
        health->writeFailures.fetch_add(1, std::memory_order_relaxed);
        if (e.kind == support::StorageError::Kind::kNoSpace &&
            !health->disabled.exchange(true, std::memory_order_relaxed)) {
          CUSP_LOG_WARN() << "partitioner: checkpoint store out of space ("
                          << e.path
                          << "); checkpointing disabled for the rest of the "
                             "run";
          if (metrics_) {
            metrics_->counter("cusp.checkpoint.disabled_enospc").add();
          }
        }
      }
      return;
    }
    if (metrics_) {
      metrics_
          ->counter("cusp.partitioner.checkpoints_written",
                    {{"phase", std::to_string(phase)}})
          .add();
    }
  }

  void restoreCheckpoint(uint32_t phase) {
    auto payload = loadCheckpointOrReplica(config_.resilience.checkpointDir,
                                           me_, numHosts(), phase);
    if (!payload) {
      // The agreement said every host has this phase; a vanished/corrupt
      // file between probe and load means live storage trouble. Surface it
      // as a retryable storage fault: the next attempt re-agrees on a phase
      // every host can actually still read.
      throw support::StorageError(
          support::StorageError::Kind::kReadFailed,
          checkpointPath(config_.resilience.checkpointDir, me_, phase),
          "checkpoint for phase " + std::to_string(phase) +
              " disappeared on host " + std::to_string(me_) +
              " between agreement and restore");
    }
    if (metrics_) {
      metrics_
          ->counter("cusp.partitioner.checkpoints_restored",
                    {{"phase", std::to_string(phase)}})
          .add();
    }
    RecvBuffer buf(std::move(*payload));
    switch (phase) {
      case 1:
        break;
      case 2:
        restoreMasterSection(buf);
        break;
      case 3:
        restoreMasterSection(buf);
        restoreEdgeSection(buf);
        break;
      case 4:
        restoreMasterSection(buf);
        restoreAllocSection(buf);
        break;
      case 5:
        result_ = deserializeDistGraph(buf);
        break;
    }
  }

  // Master-assignment outputs, needed by every later phase (masterOf).
  // Pure-master policies recompute assignments on demand, so only the
  // partitioning-state snapshot is stored for them.
  void serializeMasterSection(SendBuffer& buf) const {
    const uint8_t stateful = pureMasterPath() ? 0 : 1;
    support::serialize(buf, stateful);
    if (stateful) {
      std::vector<uint32_t> masters(masterOfMine_.size());
      for (size_t i = 0; i < masterOfMine_.size(); ++i) {
        masters[i] = masterOfMine_[i].load(std::memory_order_relaxed);
      }
      support::serialize(buf, masters);
      std::vector<std::pair<uint64_t, uint32_t>> remote(
          remoteMasters_.begin(), remoteMasters_.end());
      std::sort(remote.begin(), remote.end());
      support::serialize(buf, remote);
    }
    state_.serializeSnapshot(buf);
  }

  void restoreMasterSection(RecvBuffer& buf) {
    uint8_t stateful = 0;
    support::deserialize(buf, stateful);
    if (stateful) {
      std::vector<uint32_t> masters;
      support::deserialize(buf, masters);
      masterOfMine_ = std::vector<std::atomic<uint32_t>>(masters.size());
      for (size_t i = 0; i < masters.size(); ++i) {
        masterOfMine_[i].store(masters[i], std::memory_order_relaxed);
      }
      std::vector<std::pair<uint64_t, uint32_t>> remote;
      support::deserialize(buf, remote);
      remoteMasters_.clear();
      remoteMasters_.insert(remote.begin(), remote.end());
    }
    state_.restoreSnapshot(buf);
  }

  // Edge-assignment outputs, needed to enter graph allocation.
  void serializeEdgeSection(SendBuffer& buf) const {
    support::serialize(buf, countsFrom_);
    std::vector<std::pair<uint64_t, uint32_t>> mirrors(
        mirrorMasterHost_.begin(), mirrorMasterHost_.end());
    std::sort(mirrors.begin(), mirrors.end());
    support::serializeAll(buf, mirrors, myMasterNodes_);
  }

  void restoreEdgeSection(RecvBuffer& buf) {
    support::deserialize(buf, countsFrom_);
    std::vector<std::pair<uint64_t, uint32_t>> mirrors;
    support::deserializeAll(buf, mirrors, myMasterNodes_);
    mirrorMasterHost_.clear();
    mirrorMasterHost_.insert(mirrors.begin(), mirrors.end());
  }

  // Allocation outputs, needed to enter graph construction. The local CSR
  // skeleton (row offsets + expected edge count) is stored; the edge arrays
  // themselves are re-filled by the construction replay.
  void serializeAllocSection(SendBuffer& buf) const {
    support::serializeAll(buf, result_.numMasters, result_.localToGlobal,
                          result_.masterHostOfLocal, result_.mirrorsOnHost,
                          result_.myMirrorsByOwner, localRowStart_,
                          expectedRemoteEdges_);
  }

  void restoreAllocSection(RecvBuffer& buf) {
    result_.hostId = me_;
    result_.numHosts = numHosts();
    result_.numGlobalNodes = prop_.getNumNodes();
    result_.numGlobalEdges = prop_.getNumEdges();
    support::deserializeAll(buf, result_.numMasters, result_.localToGlobal,
                            result_.masterHostOfLocal, result_.mirrorsOnHost,
                            result_.myMirrorsByOwner, localRowStart_,
                            expectedRemoteEdges_);
    result_.globalToLocal.clear();
    result_.globalToLocal.reserve(result_.localToGlobal.size());
    for (uint64_t lid = 0; lid < result_.localToGlobal.size(); ++lid) {
      result_.globalToLocal.emplace(result_.localToGlobal[lid], lid);
    }
    localDests_.assign(localRowStart_.back(), 0);
    if (file_.hasEdgeData()) {
      localEdgeData_.assign(localRowStart_.back(), 0);
    }
    insertCursor_ =
        std::vector<std::atomic<uint64_t>>(result_.localToGlobal.size());
    for (size_t lid = 0; lid + 1 < localRowStart_.size(); ++lid) {
      insertCursor_[lid].store(localRowStart_[lid],
                               std::memory_order_relaxed);
    }
    state_.reset();  // construction replays against initial state (IV-B4)
  }

  uint32_t numHosts() const { return net_.numHosts(); }
  uint64_t myNumNodes() const { return myRange_.numNodes(); }

  // Whether the pure-master fast path (replicated computation, zero master
  // communication — paper IV-D5) applies; the config can disable it for
  // ablation measurements.
  bool pureMasterPath() const {
    return policy_.master.isPure() && !config_.disablePureMasterOptimization;
  }

  // Global node id -> index into this host's read window.
  uint64_t windowIndex(uint64_t gid) const { return gid - myRange_.nodeBegin; }
  bool inMyRange(uint64_t gid) const {
    return gid >= myRange_.nodeBegin && gid < myRange_.nodeEnd;
  }

  // Out-edges of a read node, as offsets into the window arrays.
  std::pair<uint64_t, uint64_t> windowEdges(uint64_t gid) const {
    const uint64_t idx = windowIndex(gid);
    return {winRowStart_[idx] - myRange_.edgeBegin,
            winRowStart_[idx + 1] - myRange_.edgeBegin};
  }

  // ---- phase 1: graph reading -------------------------------------------

  void phaseGraphReading() {
    const bool defaultSplit =
        config_.readNodeWeight == 0.0 && config_.readEdgeWeight == 1.0;
    ranges_ = defaultSplit
                  ? graph::contiguousEbRanges(file_, numHosts())
                  : graph::computeReadRanges(file_, numHosts(),
                                             config_.readNodeWeight,
                                             config_.readEdgeWeight);
    myRange_ = ranges_[me_];
    // The row-offset slice is always resident: every later phase needs
    // random row lookups, and at (numNodes+1)*8 bytes it is the small part
    // of the window. Overdraft — a budget too small for the offsets alone
    // is not recoverable by streaming.
    const auto rowStart = file_.rowStarts();
    winRowStart_.assign(rowStart.begin() + myRange_.nodeBegin,
                        rowStart.begin() + myRange_.nodeEnd + 1);
    const uint64_t rowBytes = winRowStart_.size() * sizeof(uint64_t);
    if (budget_) {
      budget_->reserveOverdraft(rowBytes);
      windowChargeBytes_ += rowBytes;
    }
    const bool withData = file_.hasEdgeData();
    const uint64_t destBytes =
        myRange_.numEdges() * sizeof(uint64_t) +
        (withData ? myRange_.numEdges() * sizeof(uint32_t) : 0);

    // Window residency: ADWISE-class windowed policies score edges at
    // random window offsets and must stay resident (charged as overdraft);
    // otherwise the window streams in bounded chunks when forced by config
    // or when the budget refuses the resident reservation (the refusal is
    // the memory-fault injection point, so seeded plans can push any host
    // into streaming).
    streamingWindows_ = false;
    if (windowedMode()) {
      if (budget_) {
        budget_->reserveOverdraft(destBytes);
        windowChargeBytes_ += destBytes;
      }
    } else if (config_.forceStreamingWindows) {
      streamingWindows_ = true;
    } else if (budget_ &&
               !budget_->tryReserve(destBytes,
                                    "partition.window.h" +
                                        std::to_string(me_))) {
      streamingWindows_ = true;
      if (metrics_) {
        metrics_->counter("cusp.mem.window_stream_fallbacks").add();
      }
    } else if (budget_) {
      windowChargeBytes_ += destBytes;  // tryReserve succeeded: charged
    }

    if (!streamingWindows_) {
      // Load this host's window from the "disk" into memory (paper IV-B1:
      // later phases read from memory, not disk). Window reads go through
      // the bounded-read seam, so resident and windowed GraphFiles take
      // the same path.
      winDests_ = file_.readDestWindow(myRange_.edgeBegin, myRange_.edgeEnd);
      if (withData) {
        winEdgeData_ =
            file_.readEdgeDataWindow(myRange_.edgeBegin, myRange_.edgeEnd);
      }
      simulateDiskRead(rowBytes + destBytes);
      return;
    }

    // Streaming mode: never materialize the full window. Build the
    // node-aligned chunk table; later phases fetch one chunk at a time.
    buildChunks();
    simulateDiskRead(rowBytes);  // chunk bytes are charged per fetch
    if (!config_.spillDir.empty()) {
      // Spill every chunk once, compressed, through the hardened storage
      // seam; later passes restore from the spill store instead of
      // re-reading the raw file.
      ensureStoreDirs(config_.spillDir);
      for (size_t c = 0; c < chunks_.size(); ++c) {
        const Chunk& chunk = chunks_[c];
        const std::vector<uint64_t> dests =
            file_.readDestWindow(chunk.edgeBegin, chunk.edgeEnd);
        std::vector<uint32_t> weights;
        if (withData) {
          weights =
              file_.readEdgeDataWindow(chunk.edgeBegin, chunk.edgeEnd);
        }
        simulateDiskRead((chunk.edgeEnd - chunk.edgeBegin) *
                         (sizeof(uint64_t) +
                          (withData ? sizeof(uint32_t) : 0)));
        support::spillEdgeSegment(spillChunkPath(c), dests.data(),
                                  dests.size(),
                                  withData ? weights.data() : nullptr);
      }
      spilled_ = true;
    }
  }

  // Node-aligned streaming chunks of up to streamChunkEdges edges each; a
  // node whose degree exceeds the target gets a chunk of its own. Chunk
  // node bounds are window-relative, edge bounds are GLOBAL file offsets
  // (matching winRowStart_'s values).
  void buildChunks() {
    chunks_.clear();
    const uint64_t targetEdges =
        std::max<uint64_t>(1, config_.streamChunkEdges);
    const uint64_t n = myNumNodes();
    uint64_t nodeBegin = 0;
    while (nodeBegin < n) {
      const uint64_t edgeBegin = winRowStart_[nodeBegin];
      uint64_t nodeEnd = nodeBegin + 1;
      while (nodeEnd < n &&
             winRowStart_[nodeEnd + 1] - edgeBegin <= targetEdges) {
        ++nodeEnd;
      }
      chunks_.push_back(
          Chunk{nodeBegin, nodeEnd, edgeBegin, winRowStart_[nodeEnd]});
      nodeBegin = nodeEnd;
    }
  }

  std::string spillChunkPath(size_t chunk) const {
    return config_.spillDir + "/h" + std::to_string(me_) + ".n" +
           std::to_string(numHosts()) + ".c" + std::to_string(chunk) +
           ".spill";
  }

  // Sequentially visits every streaming chunk: charges the chunk's bytes
  // against the budget as spillable transient state (the chunk buffer IS
  // the mechanism of staying under budget, so the cap never refuses it —
  // but injected kAllocFail faults throw MemoryPressure here, the chaos
  // ladder's per-chunk seam), fetches the chunk from the spill store or
  // the graph file, and releases the charge afterwards.
  // fn(chunk, dests, weights) gets chunk-relative arrays.
  template <typename Fn>
  void forEachChunk(Fn&& fn) {
    const bool withData = file_.hasEdgeData();
    const std::string context =
        "partition.chunk.h" + std::to_string(me_);
    for (size_t c = 0; c < chunks_.size(); ++c) {
      const Chunk& chunk = chunks_[c];
      const uint64_t bytes =
          (chunk.edgeEnd - chunk.edgeBegin) *
          (sizeof(uint64_t) + (withData ? sizeof(uint32_t) : 0));
      if (budget_) {
        budget_->reserveSpillable(bytes, context);  // may throw (injected)
      }
      try {
        std::vector<uint64_t> dests;
        std::vector<uint32_t> weights;
        if (spilled_) {
          auto segment = support::restoreEdgeSegment(spillChunkPath(c));
          if (!segment) {
            throw support::StorageError(
                support::StorageError::Kind::kReadFailed, spillChunkPath(c),
                "spilled edge segment vanished");
          }
          dests = std::move(segment->dests);
          weights = std::move(segment->weights);
        } else {
          dests = file_.readDestWindow(chunk.edgeBegin, chunk.edgeEnd);
          if (withData) {
            weights =
                file_.readEdgeDataWindow(chunk.edgeBegin, chunk.edgeEnd);
          }
        }
        simulateDiskRead(bytes);
        fn(chunk, dests, weights);
      } catch (...) {
        if (budget_) {
          budget_->release(bytes);
        }
        throw;
      }
      if (budget_) {
        budget_->release(bytes);
      }
    }
  }

  // Disk time is modeled, not slept: it is added to this host's reading
  // phase account (hosts read their windows concurrently, as on a parallel
  // filesystem, so per-host time is the right unit).
  void simulateDiskRead(uint64_t bytes) {
    if (config_.simulatedDiskBandwidthMBps <= 0.0) {
      return;
    }
    modeledDiskSeconds_ += static_cast<double>(bytes) /
                           (config_.simulatedDiskBandwidthMBps * 1e6);
  }

  // ---- phase 2: master assignment ---------------------------------------

  void phaseMasterAssignment() {
    if (pureMasterPath()) {
      // Pure rule: replicate computation instead of communicating (paper
      // IV-D5). masterOf() calls the rule directly; nothing to do here.
      return;
    }
    masterOfMine_ =
        std::vector<std::atomic<uint32_t>>(myNumNodes());
    for (auto& m : masterOfMine_) {
      m.store(kNoMaster, std::memory_order_relaxed);
    }

    // Pre-request the master assignments this host will need: the
    // destinations of its read edges (they are both the Fennel scoring
    // neighbors and the dstMaster inputs of edge assignment). Paper IV-D5:
    // assignments are only communicated on request.
    std::vector<std::vector<uint64_t>> requestsTo(numHosts());
    {
      DynamicBitset needed(prop_.getNumNodes());
      auto noteDest = [&](uint64_t d) {
        if (!inMyRange(d)) {
          needed.set(d);
        }
      };
      if (streamingWindows_) {
        forEachChunk([&](const Chunk&, const std::vector<uint64_t>& dests,
                         const std::vector<uint32_t>&) {
          for (uint64_t d : dests) {
            noteDest(d);
          }
        });
      } else {
        for (uint64_t d : winDests_) {
          noteDest(d);
        }
      }
      std::vector<uint64_t> neededIds;
      needed.collectSetBits(neededIds);
      for (uint64_t gid : neededIds) {
        requestsTo[graph::readingHostOf(ranges_, gid)].push_back(gid);
      }
    }
    uint64_t totalExpected = 0;
    for (HostId h = 0; h < numHosts(); ++h) {
      if (h == me_) {
        continue;
      }
      totalExpected += requestsTo[h].size();
      auto writer = net_.packedWriter(me_, h, comm::kTagMasterRequest);
      support::serialize(writer, requestsTo[h]);
      writer.commit();
    }
    net_.flushAggregated(me_);  // about to block on the other hosts' requests
    std::vector<std::vector<uint64_t>> requestsFrom(numHosts());
    for (HostId h = 0; h < numHosts(); ++h) {
      if (h == me_) {
        continue;
      }
      auto msg = net_.recvFrom(me_, h, comm::kTagMasterRequest);
      support::deserialize(msg.payload, requestsFrom[h]);
    }

    // Assign my read vertices in `rounds` chunks; after each chunk, ship
    // newly available requested assignments, opportunistically drain
    // incoming ones, and reconcile the partitioning state (paper IV-D4).
    const uint64_t rounds = std::max<uint32_t>(1, config_.stateSyncRounds);
    const uint64_t chunk =
        myNumNodes() == 0 ? 1 : (myNumNodes() + rounds - 1) / rounds;
    std::vector<size_t> requestCursor(numHosts(), 0);
    uint64_t totalReceived = 0;
    MasterLookup lookup = [this](uint64_t gid) -> uint32_t {
      if (inMyRange(gid)) {
        return masterOfMine_[windowIndex(gid)].load(std::memory_order_relaxed);
      }
      auto it = remoteMasters_.find(gid);
      return it == remoteMasters_.end() ? kNoMaster : it->second;
    };
    for (uint64_t r = 0; r < rounds; ++r) {
      const uint64_t begin = std::min(myNumNodes(), r * chunk);
      const uint64_t end = std::min(myNumNodes(), begin + chunk);
      support::parallelFor(
          begin, end,
          [&](uint64_t idx) {
            const uint64_t gid = myRange_.nodeBegin + idx;
            const uint32_t part =
                policy_.master.fn(prop_, gid, state_, lookup);
            masterOfMine_[idx].store(part, std::memory_order_relaxed);
          },
          config_.threadsPerHost);
      // Ship assignments the other hosts requested for this chunk. Requests
      // are sorted and chunks advance in node order, so a cursor per host
      // suffices; each assignment is sent exactly once.
      for (HostId h = 0; h < numHosts(); ++h) {
        if (h == me_) {
          continue;
        }
        std::vector<uint64_t> gids;
        std::vector<uint32_t> parts;
        auto& cursor = requestCursor[h];
        const auto& wanted = requestsFrom[h];
        while (cursor < wanted.size() &&
               windowIndex(wanted[cursor]) < end) {
          const uint64_t gid = wanted[cursor];
          gids.push_back(gid);
          parts.push_back(masterOfMine_[windowIndex(gid)].load(
              std::memory_order_relaxed));
          ++cursor;
        }
        if (!gids.empty()) {
          auto writer = net_.packedWriter(me_, h, comm::kTagMasterAssign);
          support::serializeAll(writer, gids, parts);
          writer.commit();
        }
      }
      // Drain whatever has arrived without blocking (paper IV-D5: no
      // barrier in master-assignment rounds), then reconcile state
      // asynchronously (IV-D4 — also without blocking).
      totalReceived += drainMasterAssignments(false, 0);
      state_.exchangeAsync(net_, me_);
    }
    // Block until every requested assignment and every state delta has
    // arrived, so nothing leaks into later phases. Ship any assignments and
    // deltas still sitting in aggregation channels first: every host flushes
    // before it blocks, so nobody waits on unflushed traffic.
    net_.flushAggregated(me_);
    totalReceived +=
        drainMasterAssignments(true, totalExpected - totalReceived);
    state_.finishExchanges(net_, me_);
  }

  // Receives kTagMasterAssign messages into remoteMasters_. Non-blocking
  // drains everything currently queued; blocking receives until `pending`
  // more assignments have arrived. Returns the number of assignments read.
  uint64_t drainMasterAssignments(bool blocking, uint64_t pending) {
    uint64_t received = 0;
    auto absorb = [&](comm::Message& msg) {
      std::vector<uint64_t> gids;
      std::vector<uint32_t> parts;
      support::deserializeAll(msg.payload, gids, parts);
      for (size_t i = 0; i < gids.size(); ++i) {
        remoteMasters_[gids[i]] = parts[i];
      }
      received += gids.size();
    };
    if (blocking) {
      while (received < pending) {
        auto msg = net_.recv(me_, comm::kTagMasterAssign);
        absorb(msg);
      }
    } else {
      while (auto msg = net_.tryRecv(me_, comm::kTagMasterAssign)) {
        absorb(*msg);
      }
    }
    return received;
  }

  // Master of any node this host legitimately queries: its own read nodes
  // and the destinations of its read edges.
  uint32_t masterOf(uint64_t gid) {
    if (pureMasterPath()) {
      static const MasterLookup noLookup;
      return policy_.master.fn(prop_, gid, state_, noLookup);
    }
    if (inMyRange(gid)) {
      return masterOfMine_[windowIndex(gid)].load(std::memory_order_relaxed);
    }
    return remoteMasters_.at(gid);
  }

  // ---- streaming-window support (ADWISE class, paper II-B2) -------------

  bool windowedMode() const {
    return config_.windowSize > 1 && policy_.edge.windowScore != nullptr;
  }

  // Sequentially visits every read edge in windowed priority order: keep a
  // window of up to windowSize scanned edges, repeatedly assign the one the
  // rule scores highest (ties: lowest window slot), refill from the
  // stream. Deterministic per host given the same initial state, so graph
  // construction replays the exact assignment order.
  template <typename Visit>
  void forEachEdgeWindowed(Visit&& visit) {
    struct Pending {
      uint64_t srcGid;
      uint64_t edgeOffset;  // window-relative edge index
    };
    std::vector<Pending> window;
    window.reserve(config_.windowSize);
    const uint64_t totalEdges = myRange_.numEdges();
    uint64_t nextEdge = 0;
    uint64_t srcCursor = 0;  // window-relative node index of nextEdge
    auto refill = [&] {
      while (window.size() < config_.windowSize && nextEdge < totalEdges) {
        while (winRowStart_[srcCursor + 1] - myRange_.edgeBegin <= nextEdge) {
          ++srcCursor;
        }
        window.push_back(Pending{myRange_.nodeBegin + srcCursor, nextEdge});
        ++nextEdge;
      }
    };
    refill();
    while (!window.empty()) {
      size_t bestSlot = 0;
      double bestScore = -1e300;
      for (size_t i = 0; i < window.size(); ++i) {
        const double score = policy_.edge.windowScore(
            prop_, window[i].srcGid, winDests_[window[i].edgeOffset], state_);
        if (score > bestScore) {
          bestScore = score;
          bestSlot = i;
        }
      }
      const Pending chosen = window[bestSlot];
      window[bestSlot] = window.back();
      window.pop_back();
      visit(chosen.srcGid, chosen.edgeOffset);
      refill();
    }
  }

  // ---- phase 3: edge assignment (paper Algorithm 3) ----------------------

  void phaseEdgeAssignment() {
    const uint32_t k = numHosts();
    outCounts_.assign(k, std::vector<uint64_t>(myNumNodes(), 0));
    std::vector<DynamicBitset> mirrorFlags(k);
    for (auto& flags : mirrorFlags) {
      flags.resize(prop_.getNumNodes());
    }
    auto recordEdge = [&](uint64_t s, uint64_t d) {
      const uint32_t sMaster = masterOf(s);
      const uint32_t dMaster = masterOf(d);
      const uint32_t owner =
          policy_.edge.fn(prop_, s, d, sMaster, dMaster, state_);
      ++outCounts_[owner][windowIndex(s)];
      if (owner != dMaster) {
        mirrorFlags[owner].set(d);
      }
      if (owner != sMaster) {
        mirrorFlags[owner].set(s);
      }
    };
    if (windowedMode()) {
      forEachEdgeWindowed(
          [&](uint64_t s, uint64_t e) { recordEdge(s, winDests_[e]); });
    } else if (streamingWindows_) {
      // Sequential chunk walk in ascending node order — the same edge
      // visit order as the single-threaded resident path, so stateful
      // policies evolve identically and outputs stay bit-identical.
      forEachChunk([&](const Chunk& chunk,
                       const std::vector<uint64_t>& dests,
                       const std::vector<uint32_t>&) {
        for (uint64_t idx = chunk.nodeBegin; idx < chunk.nodeEnd; ++idx) {
          const uint64_t s = myRange_.nodeBegin + idx;
          const uint64_t eBegin = winRowStart_[idx] - chunk.edgeBegin;
          const uint64_t eEnd = winRowStart_[idx + 1] - chunk.edgeBegin;
          for (uint64_t e = eBegin; e < eEnd; ++e) {
            recordEdge(s, dests[e]);
          }
        }
      });
    } else {
      const unsigned threads =
          policy_.edge.usesState ? 1 : config_.threadsPerHost;
      support::parallelFor(
          0, myNumNodes(),
          [&](uint64_t idx) {
            const uint64_t s = myRange_.nodeBegin + idx;
            const auto [eBegin, eEnd] = windowEdges(s);
            for (uint64_t e = eBegin; e < eEnd; ++e) {
              recordEdge(s, winDests_[e]);
            }
          },
          threads);
    }
    if (policy_.edge.usesState) {
      state_.synchronize(net_, me_);
    }

    // Exchange counts (positional vectors, paper IV-D2) and mirror flags
    // (paired with master hosts so receivers can place proxies without
    // knowing the master rule). All-zero vectors are elided to an empty
    // message (IV-D2's "nothing to send" optimization).
    for (HostId h = 0; h < k; ++h) {
      if (h == me_) {
        continue;
      }
      const bool anyEdges = std::any_of(outCounts_[h].begin(),
                                        outCounts_[h].end(),
                                        [](uint64_t c) { return c != 0; });
      {
        auto writer = net_.packedWriter(me_, h, comm::kTagEdgeCounts);
        support::serialize(writer,
                           anyEdges ? outCounts_[h] : std::vector<uint64_t>());
        writer.commit();
      }

      std::vector<uint64_t> gids;
      mirrorFlags[h].collectSetBits(gids);
      std::vector<uint32_t> masters(gids.size());
      for (size_t i = 0; i < gids.size(); ++i) {
        masters[i] = masterOf(gids[i]);
      }
      // Rides in the same aggregation channel as the counts message above,
      // so small counts + flags pairs ship as a single packet per peer.
      auto writer = net_.packedWriter(me_, h, comm::kTagMirrorFlags);
      support::serializeAll(writer, gids, masters);
      writer.commit();
    }
    net_.flushAggregated(me_);  // blocking on every peer's counts next
    // Local contribution (host == me) is absorbed directly.
    countsFrom_.assign(k, {});
    countsFrom_[me_] = outCounts_[me_];
    {
      std::vector<uint64_t> gids;
      mirrorFlags[me_].collectSetBits(gids);
      for (uint64_t gid : gids) {
        mirrorMasterHost_[gid] = masterOf(gid);
      }
    }
    for (HostId h = 0; h < k; ++h) {
      if (h == me_) {
        continue;
      }
      auto countsMsg = net_.recvFrom(me_, h, comm::kTagEdgeCounts);
      support::deserialize(countsMsg.payload, countsFrom_[h]);
      auto mirrorMsg = net_.recvFrom(me_, h, comm::kTagMirrorFlags);
      std::vector<uint64_t> gids;
      std::vector<uint32_t> masters;
      support::deserializeAll(mirrorMsg.payload, gids, masters);
      for (size_t i = 0; i < gids.size(); ++i) {
        mirrorMasterHost_[gids[i]] = masters[i];
      }
    }

    // Master lists: which global nodes is this host the master of? For pure
    // rules each host replicates the computation over all nodes (IV-D5);
    // stateful rules exchange the lists computed by the reading hosts.
    if (pureMasterPath()) {
      for (uint64_t gid = 0; gid < prop_.getNumNodes(); ++gid) {
        if (masterOf(gid) == me_) {
          myMasterNodes_.push_back(gid);
        }
      }
    } else {
      std::vector<std::vector<uint64_t>> listFor(k);
      for (uint64_t idx = 0; idx < myNumNodes(); ++idx) {
        listFor[masterOfMine_[idx].load(std::memory_order_relaxed)].push_back(
            myRange_.nodeBegin + idx);
      }
      for (HostId h = 0; h < k; ++h) {
        if (h == me_) {
          continue;
        }
        auto writer = net_.packedWriter(me_, h, comm::kTagMasterList);
        support::serialize(writer, listFor[h]);
        writer.commit();
      }
      net_.flushAggregated(me_);  // blocking on every peer's list next
      myMasterNodes_ = std::move(listFor[me_]);
      for (HostId h = 0; h < k; ++h) {
        if (h == me_) {
          continue;
        }
        auto msg = net_.recvFrom(me_, h, comm::kTagMasterList);
        std::vector<uint64_t> list;
        support::deserialize(msg.payload, list);
        myMasterNodes_.insert(myMasterNodes_.end(), list.begin(), list.end());
      }
      std::sort(myMasterNodes_.begin(), myMasterNodes_.end());
    }
  }

  // ---- phase 4: graph allocation -----------------------------------------

  void phaseGraphAllocation() {
    const uint32_t k = numHosts();
    result_.hostId = me_;
    result_.numHosts = k;
    result_.numGlobalNodes = prop_.getNumNodes();
    result_.numGlobalEdges = prop_.getNumEdges();

    // Local id space: masters (sorted), then mirrors (sorted). A node in
    // mirrorMasterHost_ whose master is this host is already in the master
    // list, not a mirror.
    std::vector<uint64_t> mirrors;
    mirrors.reserve(mirrorMasterHost_.size());
    for (const auto& [gid, owner] : mirrorMasterHost_) {
      if (owner != me_) {
        mirrors.push_back(gid);
      }
    }
    std::sort(mirrors.begin(), mirrors.end());
    result_.numMasters = myMasterNodes_.size();
    result_.localToGlobal = myMasterNodes_;
    result_.localToGlobal.insert(result_.localToGlobal.end(), mirrors.begin(),
                                 mirrors.end());
    result_.globalToLocal.reserve(result_.localToGlobal.size());
    for (uint64_t lid = 0; lid < result_.localToGlobal.size(); ++lid) {
      result_.globalToLocal.emplace(result_.localToGlobal[lid], lid);
    }
    result_.masterHostOfLocal.assign(result_.localToGlobal.size(), me_);
    for (uint64_t lid = result_.numMasters;
         lid < result_.localToGlobal.size(); ++lid) {
      result_.masterHostOfLocal[lid] =
          mirrorMasterHost_.at(result_.localToGlobal[lid]);
    }

    // Per-local-node out-edge counts from the received positional vectors;
    // prefix sum gives the CSR row offsets, and edges can then be inserted
    // in parallel as they arrive (paper IV-B4).
    std::vector<uint64_t> localOutCount(result_.localToGlobal.size(), 0);
    expectedRemoteEdges_ = 0;
    for (HostId h = 0; h < k; ++h) {
      const auto& counts = countsFrom_[h];
      for (size_t idx = 0; idx < counts.size(); ++idx) {
        if (counts[idx] == 0) {
          continue;
        }
        const uint64_t gid = ranges_[h].nodeBegin + idx;
        localOutCount[result_.globalToLocal.at(gid)] += counts[idx];
        if (h != me_) {
          expectedRemoteEdges_ += counts[idx];
        }
      }
    }
    localRowStart_ = support::parallelExclusivePrefixSum(
        localOutCount, config_.threadsPerHost);
    localDests_.assign(localRowStart_.back(), 0);
    if (file_.hasEdgeData()) {
      localEdgeData_.assign(localRowStart_.back(), 0);
    }
    insertCursor_ =
        std::vector<std::atomic<uint64_t>>(result_.localToGlobal.size());
    for (size_t lid = 0; lid < localOutCount.size(); ++lid) {
      insertCursor_[lid].store(localRowStart_[lid],
                               std::memory_order_relaxed);
    }

    // Exchange master/mirror synchronization metadata: each host tells the
    // owner of every mirror it created; owners record the broadcast lists.
    result_.myMirrorsByOwner.assign(k, {});
    result_.mirrorsOnHost.assign(k, {});
    for (uint64_t lid = result_.numMasters;
         lid < result_.localToGlobal.size(); ++lid) {
      result_.myMirrorsByOwner[result_.masterHostOfLocal[lid]].push_back(lid);
    }
    for (HostId h = 0; h < k; ++h) {
      if (h == me_) {
        continue;
      }
      std::vector<uint64_t> gids;
      gids.reserve(result_.myMirrorsByOwner[h].size());
      for (uint64_t lid : result_.myMirrorsByOwner[h]) {
        gids.push_back(result_.localToGlobal[lid]);
      }
      auto writer = net_.packedWriter(me_, h, comm::kTagMirrorToMaster);
      support::serialize(writer, gids);
      writer.commit();
    }
    net_.flushAggregated(me_);  // blocking on every peer's mirror list next
    for (HostId h = 0; h < k; ++h) {
      if (h == me_) {
        continue;
      }
      auto msg = net_.recvFrom(me_, h, comm::kTagMirrorToMaster);
      std::vector<uint64_t> gids;
      support::deserialize(msg.payload, gids);
      auto& lids = result_.mirrorsOnHost[h];
      lids.reserve(gids.size());
      for (uint64_t gid : gids) {
        lids.push_back(result_.globalToLocal.at(gid));
      }
    }

    // Reset partitioning state so construction's getEdgeOwner calls see the
    // same values edge assignment saw (paper IV-B4).
    state_.reset();
  }

  // ---- phase 5: graph construction (paper Algorithm 4) -------------------

  void phaseGraphConstruction() {
    const bool withData = file_.hasEdgeData();

    // Dedicated receiver (the paper's communication thread, IV-D1): drains
    // edge batches while the main thread streams and sends.
    std::exception_ptr receiverError;
    std::thread receiver([&] {
      try {
        uint64_t received = 0;
        while (received < expectedRemoteEdges_) {
          auto msg = net_.recv(me_, comm::kTagEdgeBatch);
          while (!msg.payload.exhausted()) {
            uint64_t srcGid = 0;
            std::vector<uint64_t> dsts;
            std::vector<uint32_t> weights;
            support::deserialize(msg.payload, srcGid);
            if (config_.compressEdgeBatches) {
              const auto block =
                  support::deserializeVarintBlock(msg.payload);
              size_t offset = 0;
              dsts = support::decodeSortedIds(block, offset);
            } else {
              support::deserialize(msg.payload, dsts);
            }
            if (withData) {
              support::deserialize(msg.payload, weights);
            }
            insertEdges(srcGid, dsts, weights);
            received += dsts.size();
          }
        }
      } catch (...) {
        receiverError = std::current_exception();
      }
    });

    // Any exception on the streaming side (e.g. an injected HostFailure at
    // a send crossing) must not leave the receiver thread joinable: abort
    // the network so it unwinds, join it, then propagate.
    try {
      streamAndSendEdges(withData);
    } catch (...) {
      net_.abort();
      receiver.join();
      throw;
    }
    receiver.join();
    if (receiverError) {
      std::rethrow_exception(receiverError);
    }

    // Canonicalize rows (arrival order is nondeterministic) and finalize.
    sortRows(withData);
    graph::CsrGraph local(std::move(localRowStart_),
                          localDests_.takeVector(),
                          localEdgeData_.takeVector());
    if (config_.buildTranspose) {
      result_.graph = local.transpose();
      result_.isTransposed = true;
    } else {
      result_.graph = std::move(local);
    }
  }

  // The streaming half of graph construction: re-assign every read edge
  // and either insert it locally or ship it to its owner.
  void streamAndSendEdges(bool withData) {
    if (windowedMode()) {
      // Windowed mode replays the exact priority order of edge assignment
      // (same initial state, same scores), shipping one edge per record.
      comm::BufferedSender sender(net_, me_, comm::kTagEdgeBatch,
                                  config_.messageBufferThreshold);
      forEachEdgeWindowed([&](uint64_t s, uint64_t e) {
        const uint64_t d = winDests_[e];
        const uint32_t owner =
            policy_.edge.fn(prop_, s, d, masterOf(s), masterOf(d), state_);
        std::vector<uint64_t> oneDst{d};
        std::vector<uint32_t> oneWeight =
            withData ? std::vector<uint32_t>{winEdgeData_[e]}
                     : std::vector<uint32_t>{};
        if (owner == me_) {
          insertEdges(s, oneDst, oneWeight);
        } else {
          sendRecord(sender, owner, s, oneDst, oneWeight, withData);
        }
      });
      sender.flushAll();
      return;
    }

    if (streamingWindows_) {
      // Chunked replay: one sequential pass over the chunks, same node
      // order as the resident paths. Chunks are node-aligned, so per-node
      // records group exactly as in the single-threaded resident path;
      // arrival-order differences are absorbed by the row sort.
      comm::BufferedSender sender(net_, me_, comm::kTagEdgeBatch,
                                  config_.messageBufferThreshold);
      std::vector<std::vector<uint64_t>> dstsFor(numHosts());
      std::vector<std::vector<uint32_t>> weightsFor(numHosts());
      forEachChunk([&](const Chunk& chunk,
                       const std::vector<uint64_t>& dests,
                       const std::vector<uint32_t>& weights) {
        for (uint64_t idx = chunk.nodeBegin; idx < chunk.nodeEnd; ++idx) {
          const uint64_t s = myRange_.nodeBegin + idx;
          const uint64_t eBegin = winRowStart_[idx] - chunk.edgeBegin;
          const uint64_t eEnd = winRowStart_[idx + 1] - chunk.edgeBegin;
          if (eBegin == eEnd) {
            continue;
          }
          const uint32_t sMaster = masterOf(s);
          for (auto& v : dstsFor) {
            v.clear();
          }
          for (auto& v : weightsFor) {
            v.clear();
          }
          for (uint64_t e = eBegin; e < eEnd; ++e) {
            const uint64_t d = dests[e];
            const uint32_t owner = policy_.edge.fn(prop_, s, d, sMaster,
                                                   masterOf(d), state_);
            dstsFor[owner].push_back(d);
            if (withData) {
              weightsFor[owner].push_back(weights[e]);
            }
          }
          for (HostId h = 0; h < numHosts(); ++h) {
            if (dstsFor[h].empty()) {
              continue;
            }
            if (h == me_) {
              insertEdges(s, dstsFor[h], weightsFor[h]);
            } else {
              sendRecord(sender, h, s, dstsFor[h], weightsFor[h], withData);
            }
          }
        }
      });
      sender.flushAll();
      return;
    }

    const unsigned threads =
        policy_.edge.usesState ? 1 : config_.threadsPerHost;
    support::parallelForBlocked(
        0, myNumNodes(),
        [&](unsigned, uint64_t lo, uint64_t hi) {
          // Thread-local buffered senders and scratch (paper IV-C3: each
          // thread serializes into its own buffer).
          comm::BufferedSender sender(net_, me_, comm::kTagEdgeBatch,
                                      config_.messageBufferThreshold);
          std::vector<std::vector<uint64_t>> dstsFor(numHosts());
          std::vector<std::vector<uint32_t>> weightsFor(numHosts());
          for (uint64_t idx = lo; idx < hi; ++idx) {
            const uint64_t s = myRange_.nodeBegin + idx;
            const uint32_t sMaster = masterOf(s);
            const auto [eBegin, eEnd] = windowEdges(s);
            if (eBegin == eEnd) {
              continue;
            }
            for (auto& v : dstsFor) {
              v.clear();
            }
            for (auto& v : weightsFor) {
              v.clear();
            }
            for (uint64_t e = eBegin; e < eEnd; ++e) {
              const uint64_t d = winDests_[e];
              const uint32_t owner = policy_.edge.fn(prop_, s, d, sMaster,
                                                     masterOf(d), state_);
              dstsFor[owner].push_back(d);
              if (withData) {
                weightsFor[owner].push_back(winEdgeData_[e]);
              }
            }
            for (HostId h = 0; h < numHosts(); ++h) {
              if (dstsFor[h].empty()) {
                continue;
              }
              if (h == me_) {
                insertEdges(s, dstsFor[h], weightsFor[h]);
              } else {
                sendRecord(sender, h, s, dstsFor[h], weightsFor[h],
                           withData);
              }
            }
          }
          sender.flushAll();
        },
        threads);
  }

  void insertEdges(uint64_t srcGid, const std::vector<uint64_t>& dsts,
                   const std::vector<uint32_t>& weights) {
    const uint64_t srcLid = result_.globalToLocal.at(srcGid);
    const uint64_t base = insertCursor_[srcLid].fetch_add(
        dsts.size(), std::memory_order_relaxed);
    for (size_t i = 0; i < dsts.size(); ++i) {
      localDests_[base + i] = result_.globalToLocal.at(dsts[i]);
      if (!weights.empty()) {
        localEdgeData_[base + i] = weights[i];
      }
    }
  }

  // Serializes one (src, dsts..., weights...) record into the buffered
  // sender, optionally delta+varint coding the destinations (sorted
  // together with their weights; final rows are re-sorted anyway).
  void sendRecord(comm::BufferedSender& sender, HostId dst, uint64_t srcGid,
                  std::vector<uint64_t>& dsts, std::vector<uint32_t>& weights,
                  bool withData) {
    if (config_.compressEdgeBatches) {
      if (withData) {
        std::vector<std::pair<uint64_t, uint32_t>> paired(dsts.size());
        for (size_t i = 0; i < dsts.size(); ++i) {
          paired[i] = {dsts[i], weights[i]};
        }
        std::sort(paired.begin(), paired.end());
        for (size_t i = 0; i < paired.size(); ++i) {
          dsts[i] = paired[i].first;
          weights[i] = paired[i].second;
        }
      } else {
        std::sort(dsts.begin(), dsts.end());
      }
      const std::vector<uint8_t> block = support::encodeSortedIds(dsts);
      if (withData) {
        sender.append(dst, srcGid, block, weights);
      } else {
        sender.append(dst, srcGid, block);
      }
    } else if (withData) {
      sender.append(dst, srcGid, dsts, weights);
    } else {
      sender.append(dst, srcGid, dsts);
    }
  }

  void sortRows(bool withData) {
    support::parallelFor(
        0, result_.localToGlobal.size(),
        [&](uint64_t lid) {
          const uint64_t lo = localRowStart_[lid];
          const uint64_t hi = localRowStart_[lid + 1];
          if (withData) {
            std::vector<std::pair<uint64_t, uint32_t>> row;
            row.reserve(hi - lo);
            for (uint64_t e = lo; e < hi; ++e) {
              row.emplace_back(localDests_[e], localEdgeData_[e]);
            }
            std::sort(row.begin(), row.end());
            for (uint64_t e = lo; e < hi; ++e) {
              localDests_[e] = row[e - lo].first;
              localEdgeData_[e] = row[e - lo].second;
            }
          } else {
            std::sort(localDests_.begin() + static_cast<ptrdiff_t>(lo),
                      localDests_.begin() + static_cast<ptrdiff_t>(hi));
          }
        },
        config_.threadsPerHost);
  }

  // --- inputs ---
  comm::Network& net_;
  const HostId me_;
  const graph::GraphFile& file_;
  const PartitionPolicy& policy_;
  const PartitionerConfig& config_;
  support::PhaseTimes& phaseTimes_;
  GraphProperties prop_;
  double modeledDiskSeconds_ = 0.0;

  // Observability (null when no sink was attached at construction).
  std::shared_ptr<obs::TraceBuffer> trace_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;

  // --- memory governor (null budget_ = unbudgeted, all charging elided) ---
  std::shared_ptr<support::MemoryBudget> budget_;
  uint64_t windowChargeBytes_ = 0;  // released in the destructor

  // One node-aligned streaming chunk: node bounds are window-relative,
  // edge bounds are GLOBAL file offsets (winRowStart_'s coordinate space).
  struct Chunk {
    uint64_t nodeBegin = 0, nodeEnd = 0;
    uint64_t edgeBegin = 0, edgeEnd = 0;
  };

  // --- reading phase ---
  std::vector<ReadRange> ranges_;
  ReadRange myRange_;
  std::vector<uint64_t> winRowStart_;  // global edge offsets, rebased view
  std::vector<uint64_t> winDests_;     // empty in streaming mode
  std::vector<uint32_t> winEdgeData_;
  bool streamingWindows_ = false;      // bounded-window streaming reads
  std::vector<Chunk> chunks_;          // streaming mode only
  bool spilled_ = false;  // chunks live in spillDir, not the graph file

  // --- master assignment ---
  PartitionState state_;
  std::vector<std::atomic<uint32_t>> masterOfMine_;  // stateful rules only
  std::unordered_map<uint64_t, uint32_t> remoteMasters_;

  // --- edge assignment / allocation ---
  std::vector<std::vector<uint64_t>> outCounts_;   // [host][window index]
  std::vector<std::vector<uint64_t>> countsFrom_;  // [host][their index]
  std::unordered_map<uint64_t, uint32_t> mirrorMasterHost_;
  std::vector<uint64_t> myMasterNodes_;
  uint64_t expectedRemoteEdges_ = 0;

  // --- construction ---
  // The local CSR edge arrays are the partition being built — they must be
  // resident, so they charge the budget in overdraft (accounted, never
  // refused); the BudgetedVector's charge is released when the arrays are
  // handed to CsrGraph.
  std::vector<uint64_t> localRowStart_;
  support::BudgetedVector<uint64_t> localDests_{"partition.csr.dests",
                                                /*overdraft=*/true};
  support::BudgetedVector<uint32_t> localEdgeData_{"partition.csr.data",
                                                   /*overdraft=*/true};
  std::vector<std::atomic<uint64_t>> insertCursor_;

  DistGraph result_;
};

}  // namespace

DistGraph partitionOnHost(comm::Network& net, comm::HostId me,
                          const graph::GraphFile& file,
                          const PartitionPolicy& policy,
                          const PartitionerConfig& config,
                          support::PhaseTimes& phaseTimes) {
  if (net.numHosts() != config.numHosts) {
    throw std::invalid_argument(
        "partitionOnHost: network size != config.numHosts");
  }
  PartitionJob job(net, me, file, policy, config, phaseTimes);
  return job.run();
}

namespace {

std::shared_ptr<comm::FaultInjector> makeInjector(
    const PartitionerConfig& config) {
  const auto& plan = config.resilience.faultPlan;
  if (!plan || plan->empty()) {
    return nullptr;
  }
  return std::make_shared<comm::FaultInjector>(*plan);
}

// One full pipeline run over a fresh Network. The injector is passed in
// (rather than built here) so recovery attempts share it: occurrence
// counters and fired-crash flags persist, and a rebooted host does not
// re-crash on replay. The straggler monitor is shared the same way, so
// blame accumulated against a slow host survives the teardown of a failed
// attempt (a null monitor with the policy enabled gets a run-local one).
PartitionResult runPipeline(
    const graph::GraphFile& file, const PartitionPolicy& policy,
    const PartitionerConfig& config,
    const std::shared_ptr<comm::FaultInjector>& injector,
    const std::shared_ptr<comm::StragglerMonitor>& monitor = nullptr) {
  comm::Network net(config.numHosts, config.networkCostModel);
  if (config.aggregation) {
    net.setAggregation(*config.aggregation);
  }
  if (injector) {
    net.setFaultInjector(injector);
  }
  if (config.resilience.recvTimeoutSeconds > 0) {
    net.setRecvTimeout(config.resilience.recvTimeoutSeconds);
  }
  net.setRetryPolicy(config.resilience.retry);
  if (config.resilience.straggler.enabled()) {
    net.setStragglerPolicy(config.resilience.straggler);
    net.setStragglerMonitor(
        monitor ? monitor
                : std::make_shared<comm::StragglerMonitor>(config.numHosts));
  }
  PartitionResult result;
  result.partitions.resize(config.numHosts);
  std::vector<support::PhaseTimes> hostTimes(config.numHosts);
  support::Timer total;
  comm::runHosts(net, [&](comm::HostId me) {
    result.partitions[me] =
        partitionOnHost(net, me, file, policy, config, hostTimes[me]);
  });
  result.wallSeconds = total.elapsedSeconds();
  for (const auto& times : hostTimes) {
    result.phaseTimes.maxWith(times);
  }
  result.totalSeconds = result.phaseTimes.total();
  result.volume = net.statsSnapshot();
  return result;
}

// The reading split the pipeline will use for `numHosts` hosts; mirrors
// phaseGraphReading so the driver can reason about old/new windows without
// running a host.
std::vector<ReadRange> readRangesFor(const graph::GraphFile& file,
                                     const PartitionerConfig& config,
                                     uint32_t numHosts) {
  const bool defaultSplit =
      config.readNodeWeight == 0.0 && config.readEdgeWeight == 1.0;
  return defaultSplit ? graph::contiguousEbRanges(file, numHosts)
                      : graph::computeReadRanges(file, numHosts,
                                                 config.readNodeWeight,
                                                 config.readEdgeWeight);
}

ReadRange intersectRanges(const ReadRange& a, const ReadRange& b) {
  ReadRange r;
  r.nodeBegin = std::max(a.nodeBegin, b.nodeBegin);
  r.nodeEnd = std::max(r.nodeBegin, std::min(a.nodeEnd, b.nodeEnd));
  r.edgeBegin = std::max(a.edgeBegin, b.edgeBegin);
  r.edgeEnd = std::max(r.edgeBegin, std::min(a.edgeEnd, b.edgeEnd));
  return r;
}

// Bytes a host reads from the graph file for window `r` (row offsets +
// destinations + optional edge data) — the same arithmetic
// phaseGraphReading charges to the simulated disk.
uint64_t windowBytes(const ReadRange& r, bool withData) {
  return (r.numNodes() + 1) * sizeof(uint64_t) +
         r.numEdges() * sizeof(uint64_t) +
         (withData ? r.numEdges() * sizeof(uint32_t) : 0);
}

// One Path A redistribution round (core/degraded.h): the survivors of the
// current base run a membership agreement, each loads every rank's phase-5
// state (buddy replicas for the dead), computes the identical
// redistribution, and keeps its own compacted partition. Crossing-visible
// like a pipeline run, so pending crashes can fire inside the round.
PartitionResult runRedistributionRound(
    const PartitionerConfig& baseConfig,
    const std::shared_ptr<comm::FaultInjector>& injector,
    const std::shared_ptr<comm::StragglerMonitor>& monitor,
    const std::vector<uint32_t>& deadRanks) {
  const uint32_t k = baseConfig.numHosts;
  comm::Network net(k, baseConfig.networkCostModel);
  if (baseConfig.aggregation) {
    net.setAggregation(*baseConfig.aggregation);
  }
  if (injector) {
    net.setFaultInjector(injector);
  }
  if (baseConfig.resilience.recvTimeoutSeconds > 0) {
    net.setRecvTimeout(baseConfig.resilience.recvTimeoutSeconds);
  }
  net.setRetryPolicy(baseConfig.resilience.retry);
  if (monitor && baseConfig.resilience.straggler.enabled()) {
    net.setStragglerPolicy(baseConfig.resilience.straggler);
    net.setStragglerMonitor(monitor);
  }
  for (uint32_t d : deadRanks) {
    net.evict(d);
  }
  std::vector<uint32_t> newRankOf(k, UINT32_MAX);
  uint32_t numSurvivors = 0;
  for (uint32_t r = 0; r < k; ++r) {
    if (net.isAlive(r)) {
      newRankOf[r] = numSurvivors++;
    }
  }
  const std::string& dir = baseConfig.resilience.checkpointDir;
  PartitionResult result;
  result.partitions.resize(numSurvivors);
  std::vector<support::PhaseTimes> hostTimes(k);
  const std::shared_ptr<obs::TraceBuffer> trace = obs::sink().trace;
  support::Timer total;
  comm::runHosts(net, [&](comm::HostId me) {
    obs::ScopedSpan span(trace.get(), me, "Degraded Redistribution");
    const double cpu0 = support::threadCpuSeconds();
    net.enterPhase(me, 0);
    net.faultPoint(me);
    const comm::MembershipView view = net.agreeMembership(me);
    // Replicated computation (paper IV-D5): every survivor loads all k
    // phase-5 states and derives the same redistribution locally; no
    // partition data crosses the network.
    std::vector<DistGraph> parts(k);
    for (uint32_t h = 0; h < k; ++h) {
      // Dead ranks: own store first, then the buddy replica. A condemned
      // straggler's machine is slow, not dead, so its own files are still
      // readable; a crashed rank's store was removed with it and only the
      // replica can answer.
      auto payload = view.isAlive(h)
                         ? loadCheckpoint(dir, h, k, 5)
                         : loadCheckpointOrReplica(dir, h, k, 5);
      if (!payload) {
        throw support::StorageError(
            support::StorageError::Kind::kReadFailed,
            checkpointPath(dir, h, 5),
            "phase-5 state of host " + std::to_string(h) +
                " vanished during redistribution");
      }
      RecvBuffer buf(std::move(*payload));
      parts[h] = deserializeDistGraph(buf);
    }
    std::vector<DistGraph> compacted =
        redistributePartitions(parts, deadRanks, /*compact=*/true);
    result.partitions[newRankOf[me]] = std::move(compacted[newRankOf[me]]);
    hostTimes[me].add("Degraded Redistribution",
                      support::threadCpuSeconds() - cpu0);
    net.barrier(me);
  });
  result.wallSeconds = total.elapsedSeconds();
  for (const auto& times : hostTimes) {
    result.phaseTimes.maxWith(times);
  }
  result.totalSeconds = result.phaseTimes.total();
  result.volume = net.statsSnapshot();
  return result;
}

}  // namespace

namespace {

// Attaches the config-requested process budget unless one is already
// attached (the CLI's --memory-budget wins; its plan and accumulated
// shrinks must not be reset by the entry point).
std::unique_ptr<support::ScopedMemoryBudget> scopedBudgetFor(
    const PartitionerConfig& config) {
  if (config.memoryBudgetBytes == 0 || support::memoryBudgetAttached()) {
    return nullptr;
  }
  const auto& plan = config.resilience.memoryFaultPlan;
  return std::make_unique<support::ScopedMemoryBudget>(
      config.memoryBudgetBytes, plan ? *plan : support::MemoryFaultPlan{});
}

// Attaches a process write fence for the resilient driver unless one is
// already attached (a test's pre-attached fence wins, same contract as the
// storage-fault seam). Without degraded mode there is nothing that could
// ever fence a host, so the seam stays detached and checkpoint writes are
// byte-identical to the pre-split-brain behavior.
std::unique_ptr<support::ScopedWriteFence> scopedFenceFor(
    const PartitionerConfig& config) {
  if (!config.resilience.degradedMode || support::writeFence() != nullptr) {
    return nullptr;
  }
  return std::make_unique<support::ScopedWriteFence>();
}

}  // namespace

PartitionResult partitionGraph(const graph::GraphFile& file,
                               const PartitionPolicy& policy,
                               const PartitionerConfig& config) {
  if (config.numHosts == 0) {
    throw std::invalid_argument("partitionGraph: numHosts must be > 0");
  }
  const auto scopedBudget = scopedBudgetFor(config);
  return runPipeline(file, policy, config, makeInjector(config));
}

PartitionResult partitionGraphResilient(const graph::GraphFile& file,
                                        const PartitionPolicy& policy,
                                        const PartitionerConfig& config,
                                        RecoveryReport* report) {
  if (config.numHosts == 0) {
    throw std::invalid_argument(
        "partitionGraphResilient: numHosts must be > 0");
  }
  const uint32_t maxAttempts =
      std::max(1u, config.resilience.maxRecoveryAttempts);
  if (report != nullptr) {
    *report = RecoveryReport{};
    report->finalNumHosts = config.numHosts;
  }
  const bool checkpoints = config.resilience.enableCheckpoints &&
                           !config.resilience.checkpointDir.empty();
  if (checkpoints) {
    garbageCollectCheckpointTmp(config.resilience.checkpointDir,
                                config.resilience.checkpointGcAgeSeconds);
  }
  // One budget for the whole recovery loop (not per attempt): injected
  // budget shrinks persist across restarts, so "checkpoint-and-restart at a
  // smaller budget" is exactly what a retry after kBudgetShrink does.
  const auto scopedBudget = scopedBudgetFor(config);
  // One write fence for the whole recovery loop: fences applied by the
  // quorum rule (here or by Network::enforceQuorumOnFailure inside a run)
  // stay in force across attempt teardowns until a heal lifts them.
  const auto scopedFence = scopedFenceFor(config);
  // Driver-side observability: attempt spans land on the dedicated driver
  // lane; eviction/re-read counters mirror the RecoveryReport fields.
  const obs::Sink obsSink = obs::sink();
  uint64_t totalAttempts = 0;

  // The current "base": the host set the pipeline runs over. Evictions
  // shrink it; aliveOriginal[rank] is the ORIGINAL id of the host running
  // as `rank` in the current base. The attempt budget resets per base.
  PartitionerConfig baseConfig = config;
  std::vector<comm::HostId> aliveOriginal(config.numHosts);
  for (uint32_t r = 0; r < config.numHosts; ++r) {
    aliveOriginal[r] = r;
  }
  auto baseInjector = makeInjector(baseConfig);
  // Shared across attempts like the injector, so blame accumulated against
  // a slow host survives a failed attempt's teardown; rebuilt (survivor-
  // sized) when Path B shrinks the base.
  std::shared_ptr<comm::StragglerMonitor> stragglerMonitor =
      config.resilience.straggler.enabled()
          ? std::make_shared<comm::StragglerMonitor>(config.numHosts)
          : nullptr;
  // Soft reports of monitors retired by Path B rebases (the fresh
  // survivor-sized monitor restarts at zero).
  uint64_t softReportsRetired = 0;
  // Memory-pressure degradation ladder position. Each MemoryPressure fault
  // advances at most one rung (stream windows -> spill -> halve chunks);
  // the cap bounds the free (unmetered) config changes so persistent
  // pressure eventually burns the ordinary attempt budget instead of
  // looping forever.
  uint32_t memoryLadderSteps = 0;
  constexpr uint32_t kMaxMemoryLadderSteps = 16;
  // Storage/straggler outcomes reported on every exit path.
  const auto fillStorageReport = [&] {
    if (report == nullptr) {
      return;
    }
    const auto& health = config.resilience.checkpointHealth;
    if (health) {
      report->checkpointWriteFailures =
          health->writeFailures.load(std::memory_order_relaxed);
      report->checkpointingDisabledByEnospc =
          health->disabled.load(std::memory_order_relaxed);
    }
    if (stragglerMonitor) {
      report->stragglerSoftReports =
          softReportsRetired + stragglerMonitor->totalSoftReports();
    }
    if (support::memoryBudgetAttached()) {
      const support::MemoryBudgetStats ms =
          support::memoryBudget()->stats();
      report->spillBytesWritten = ms.spillBytes;
      report->memoryPeakBytes = ms.peakBytes;
    }
    if (const auto fence = support::writeFence()) {
      report->fencedWriteAttempts = fence->fencedWriteAttempts();
    }
  };
  uint64_t epoch = 0;
  // Path A state: base ranks evicted but with phase-5 state recoverable,
  // awaiting a redistribution round; the matching replica payload bytes and
  // the report index of each base rank's eviction record.
  std::vector<uint32_t> pendingRedistribution;
  uint64_t pendingReplicaBytes = 0;
  std::map<uint32_t, size_t> recordIndexOfRank;
  // Heal-time rejoin: a healed partition left a complete phase-5 set, so
  // the next try runs the Path A round over the FULL base (no dead ranks) —
  // every host, including the formerly fenced minority, reloads its state
  // from the checkpoint store and the run finishes at full strength.
  bool healRejoin = false;

  for (;;) {  // one iteration per base (membership epoch)
    const bool baseCheckpoints =
        baseConfig.resilience.enableCheckpoints &&
        !baseConfig.resilience.checkpointDir.empty();
    bool newBase = false;
    for (uint32_t attempt = 0; !newBase;) {
      if (report != nullptr) {
        ++report->attempts;
        // Mirror the agreement the hosts are about to compute (min over
        // hosts of the latest valid checkpoint) for reporting.
        uint32_t resume = 0;
        if (baseCheckpoints && pendingRedistribution.empty()) {
          resume = 5;
          for (uint32_t h = 0; h < baseConfig.numHosts; ++h) {
            resume = std::min(
                resume,
                latestValidCheckpoint(baseConfig.resilience.checkpointDir, h,
                                      baseConfig.numHosts, 5));
          }
        }
        report->resumedFromPhase = resume;
      }
      try {
        // A cancelled/expired job must not start another full pipeline run;
        // JobCancelled is not a fault, so the catch below rethrows it.
        if (const auto& cancel = config.resilience.cancel) {
          cancel->check("partition driver attempt " +
                        std::to_string(totalAttempts + 1));
        }
        ++totalAttempts;
        obs::ScopedSpan attemptSpan(
            obsSink.trace.get(), obs::kDriverLane,
            (healRejoin ? "partition rejoin "
                        : pendingRedistribution.empty() ? "attempt "
                                                        : "redistribution ") +
                std::to_string(totalAttempts));
        PartitionResult result =
            healRejoin
                ? runRedistributionRound(baseConfig, baseInjector,
                                         stragglerMonitor, {})
                : pendingRedistribution.empty()
                      ? runPipeline(file, policy, baseConfig, baseInjector,
                                    stragglerMonitor)
                      : runRedistributionRound(baseConfig, baseInjector,
                                               stragglerMonitor,
                                               pendingRedistribution);
        if (!pendingRedistribution.empty() && obsSink.metrics) {
          obsSink.metrics->counter("cusp.partitioner.replica_bytes_read")
              .add(pendingReplicaBytes);
        }
        if (report != nullptr) {
          report->finalNumHosts =
              static_cast<uint32_t>(result.partitions.size());
          if (!pendingRedistribution.empty()) {
            report->replicaBytesRead += pendingReplicaBytes;
            for (uint32_t d : pendingRedistribution) {
              report->evictions[recordIndexOfRank.at(d)].redistributed = true;
            }
          }
        }
        fillStorageReport();
        return result;
      } catch (...) {
        const auto fault = classifyFault(std::current_exception());
        if (!fault) {
          fillStorageReport();
          throw;  // not a fault exception; never retried
        }
        if (report != nullptr) {
          report->failures.emplace_back(fault->what);
          report->failureKinds.emplace_back(fault->kindName());
        }

        // --- split-brain quorum rung --------------------------------------
        // A timed partition event is in force: resolve it under the quorum
        // rule instead of burning recovery attempts against a cluster that
        // cannot agree. A strict-majority component fences the minority and
        // proceeds; an even split fails fast on both sides; a healing
        // partition lifts the fences and the fenced hosts rejoin from the
        // checkpoint store. Minority ranks evicted here keep their stores
        // (the machines are fenced, not dead), so the shared eviction
        // machinery below treats them like condemned stragglers.
        std::vector<uint32_t> partitionFenced;
        const auto pendingPartition = baseInjector != nullptr
                                          ? baseInjector->unresolvedPartition()
                                          : std::nullopt;
        if (baseConfig.resilience.degradedMode && pendingPartition &&
            baseConfig.numHosts > 1) {
          const comm::PartitionEvent pe =
              baseInjector->partitionEvent(*pendingPartition);
          if (pe.groupOf.size() == baseConfig.numHosts) {
            if (report != nullptr) {
              ++report->partitionEvents;
            }
            if (obsSink.metrics) {
              obsSink.metrics->counter("cusp.net.partition.events").add();
            }
            std::map<uint8_t, uint32_t> groupSize;
            for (uint32_t r = 0; r < baseConfig.numHosts; ++r) {
              ++groupSize[pe.groupOf[r]];
            }
            int majorityGroup = -1;
            for (const auto& [group, size] : groupSize) {
              if (size * 2 > baseConfig.numHosts) {
                majorityGroup = group;
              }
            }
            if (majorityGroup < 0) {
              // Even split: no component holds a strict majority, so neither
              // side may evict the other and proceed. Both sides have fenced
              // themselves (Network::enforceQuorumOnFailure) and thrown
              // MinorityPartition; fail fast without spending attempts on an
              // unwinnable agreement.
              fillStorageReport();
              throw;
            }
            for (uint32_t r = 0; r < baseConfig.numHosts; ++r) {
              if (pe.groupOf[r] != static_cast<uint8_t>(majorityGroup)) {
                partitionFenced.push_back(r);
              }
            }
            ++epoch;
            if (const auto fence = support::writeFence()) {
              fence->advance(epoch);
              for (uint32_t r : partitionFenced) {
                fence->fence(r);
              }
            }
            if (report != nullptr) {
              for (uint32_t r : partitionFenced) {
                report->fencedHosts.push_back(aliveOriginal[r]);
              }
            }
            baseInjector->resolvePartition(*pendingPartition);
            if (pe.heals) {
              // Heal-time rejoin: connectivity is restored, so the fenced
              // hosts lift their fences and rejoin at full strength. With a
              // complete phase-5 set the rejoin runs the Path A round over
              // the full base; otherwise the next pipeline attempt restores
              // every host — the healed minority included — from the last
              // common checkpoint. Either way the run completes at full
              // size, and a deterministic policy reproduces the clean
              // output bit for bit.
              if (const auto fence = support::writeFence()) {
                for (uint32_t r : partitionFenced) {
                  fence->lift(r);
                }
              }
              if (report != nullptr) {
                for (uint32_t r : partitionFenced) {
                  report->rejoinedHosts.push_back(aliveOriginal[r]);
                }
              }
              if (obsSink.metrics) {
                obsSink.metrics->counter("cusp.net.partition.heals").add();
                obsSink.metrics->counter("cusp.net.partition.rejoins")
                    .add(partitionFenced.size());
              }
              bool p5Complete = baseCheckpoints;
              for (uint32_t r = 0; p5Complete && r < baseConfig.numHosts;
                   ++r) {
                p5Complete = loadCheckpoint(baseConfig.resilience.checkpointDir,
                                            r, baseConfig.numHosts, 5)
                                 .has_value();
              }
              healRejoin = p5Complete;
              continue;  // the fault was the partition's; no attempt burned
            }
            if (obsSink.metrics) {
              obsSink.metrics->counter("cusp.net.partition.quorum_evictions")
                  .add(partitionFenced.size());
            }
            // No heal: fall through to the eviction machinery with the
            // minority marked for removal from the base — still without
            // burning an attempt (partitionFenced forces `evictable`).
          }
        }
        if (partitionFenced.empty() &&
            fault->kind == ClassifiedFault::kMinorityPartition) {
          // A fenced minority without a resolvable partition event (an
          // asymmetric link cut isolated the host for good): fail-fast by
          // contract — no retry can win back a quorum that is not there.
          fillStorageReport();
          throw;
        }

        // --- memory-pressure degradation ladder ---------------------------
        // A refused reservation is a resource-shape problem, not a transient
        // fault: retrying the identical configuration would hit the same
        // wall. Walk one rung per event — (1) stream windows instead of
        // materializing them, (2) spill streamed chunks compressed next to
        // the checkpoints, (3) halve the chunk size — and only when the
        // ladder is exhausted fall through to the plain retry/throw path.
        if (fault->kind == ClassifiedFault::kMemoryPressure) {
          if (report != nullptr) {
            ++report->memoryPressureEvents;
          }
          if (obsSink.metrics) {
            obsSink.metrics->counter("cusp.mem.pressure_events").add();
          }
          if (memoryLadderSteps < kMaxMemoryLadderSteps) {
            ++memoryLadderSteps;
            if (!baseConfig.forceStreamingWindows) {
              baseConfig.forceStreamingWindows = true;
              CUSP_LOG_WARN() << "memory pressure: switching to streaming "
                                 "window reads";
              continue;
            }
            if (baseConfig.spillDir.empty() && baseCheckpoints) {
              baseConfig.spillDir =
                  baseConfig.resilience.checkpointDir + "/spill";
              CUSP_LOG_WARN() << "memory pressure: spilling window chunks "
                                 "to "
                              << baseConfig.spillDir;
              continue;
            }
            if (baseConfig.streamChunkEdges > 1024) {
              baseConfig.streamChunkEdges = std::max<uint64_t>(
                  1024, baseConfig.streamChunkEdges / 2);
              CUSP_LOG_WARN() << "memory pressure: shrinking stream chunks "
                                 "to "
                              << baseConfig.streamChunkEdges << " edges";
              continue;
            }
          }
          // Ladder exhausted: fall through to the ordinary retry budget.
        }

        const bool crashEvictable =
            fault->kind == ClassifiedFault::kHostFailure &&
            baseInjector != nullptr && fault->host != comm::kAnyHost &&
            baseInjector->isPermanentlyDown(fault->host);
        const bool stragglerEvictable =
            fault->kind == ClassifiedFault::kStragglerDeadline &&
            stragglerMonitor != nullptr && fault->host != comm::kAnyHost &&
            stragglerMonitor->isCondemned(fault->host);
        const bool evictable =
            baseConfig.resilience.degradedMode &&
            (crashEvictable || stragglerEvictable ||
             !partitionFenced.empty()) &&
            baseConfig.numHosts > 1;
        if (!evictable) {
          if (++attempt >= maxAttempts) {
            fillStorageReport();
            throw;
          }
          continue;  // plain retry: transient crash, stall, or lost sends
        }

        // --- membership eviction ------------------------------------------
        // Every permanently-down and every condemned base rank is evicted
        // together (a second machine may have died — or stalled — in the
        // same run). Crashed ranks lose their checkpoint stores; condemned
        // stragglers keep theirs (the machine is slow, not dead).
        std::vector<uint32_t> deadRanks;
        std::vector<bool> crashedRank(baseConfig.numHosts, false);
        for (uint32_t r = 0; r < baseConfig.numHosts; ++r) {
          const bool crashed =
              baseInjector != nullptr && baseInjector->isPermanentlyDown(r);
          const bool condemned =
              stragglerMonitor != nullptr && stragglerMonitor->isCondemned(r);
          const bool fenced = std::find(partitionFenced.begin(),
                                        partitionFenced.end(),
                                        r) != partitionFenced.end();
          if (crashed || condemned || fenced) {
            deadRanks.push_back(r);
            crashedRank[r] = crashed;
          }
        }
        for (uint32_t d : deadRanks) {
          if (recordIndexOfRank.count(d) != 0) {
            continue;  // evicted earlier in this base
          }
          ++epoch;
          if (obsSink.metrics) {
            obsSink.metrics->counter("cusp.partitioner.evictions").add();
          }
          recordIndexOfRank[d] =
              report != nullptr ? report->evictions.size() : 0;
          if (report != nullptr) {
            report->evictions.push_back(
                EvictionRecord{aliveOriginal[d], fault->phase, epoch,
                               /*redistributed=*/false,
                               /*replicaLost=*/false});
          }
          if (baseCheckpoints && crashedRank[d]) {
            // The dead machine's local store dies with it: its own
            // checkpoints and every buddy replica it held for others.
            removeHostCheckpointStore(baseConfig.resilience.checkpointDir, d,
                                      baseConfig.numHosts, 5);
          }
        }

        // Path A feasibility: every survivor still holds its own phase-5
        // checkpoint AND every dead rank's phase-5 state is recoverable —
        // from its own (still readable) store for condemned stragglers,
        // from its buddy replica for crashed ranks.
        bool anyCrashed = false;
        for (uint32_t d : deadRanks) {
          anyCrashed = anyCrashed || crashedRank[d];
        }
        bool feasible = baseCheckpoints &&
                        (!anyCrashed ||
                         baseConfig.resilience.buddyReplication) &&
                        deadRanks.size() < baseConfig.numHosts;
        pendingReplicaBytes = 0;
        if (feasible) {
          std::vector<bool> dead(baseConfig.numHosts, false);
          for (uint32_t d : deadRanks) {
            dead[d] = true;
          }
          for (uint32_t r = 0; r < baseConfig.numHosts; ++r) {
            if (!dead[r] &&
                !loadCheckpoint(baseConfig.resilience.checkpointDir, r,
                                baseConfig.numHosts, 5)) {
              feasible = false;  // mid-pipeline loss: no complete p5 set
            }
          }
          if (feasible) {
            for (uint32_t d : deadRanks) {
              if (!crashedRank[d] &&
                  loadCheckpoint(baseConfig.resilience.checkpointDir, d,
                                 baseConfig.numHosts, 5)) {
                continue;  // condemned straggler's own store answers
              }
              const auto replica =
                  loadCheckpointReplica(baseConfig.resilience.checkpointDir,
                                        d, baseConfig.numHosts, 5);
              if (!replica) {
                feasible = false;  // buddy died too; replica gone with it
                if (report != nullptr) {
                  report->evictions[recordIndexOfRank.at(d)].replicaLost =
                      true;
                }
              } else {
                pendingReplicaBytes += replica->size();
              }
            }
          }
        }
        if (feasible) {
          pendingRedistribution = deadRanks;
          continue;  // next try runs the redistribution round
        }

        // --- Path B: shrink the base and re-partition ---------------------
        std::vector<bool> dead(baseConfig.numHosts, false);
        for (uint32_t d : deadRanks) {
          dead[d] = true;
        }
        std::vector<comm::HostId> newAlive;
        std::vector<uint32_t> survivorOldRank;
        for (uint32_t r = 0; r < baseConfig.numHosts; ++r) {
          if (!dead[r]) {
            newAlive.push_back(aliveOriginal[r]);
            survivorOldRank.push_back(r);
          }
        }
        if (newAlive.empty()) {
          fillStorageReport();
          throw;  // every host is gone; nothing to degrade to
        }
        const uint32_t m = static_cast<uint32_t>(newAlive.size());
        if (report != nullptr || obsSink.metrics) {
          // Adopted-window bookkeeping: the new m-way split re-reads the
          // dead hosts' old windows; record which survivor re-reads which
          // slice and the modeled bytes beyond each survivor's own old
          // window.
          const auto oldRanges =
              readRangesFor(file, baseConfig, baseConfig.numHosts);
          const auto newRanges = readRangesFor(file, baseConfig, m);
          const bool withData = file.hasEdgeData();
          uint64_t bytesReRead = 0;
          for (uint32_t r = 0; r < m; ++r) {
            const ReadRange& mine = newRanges[r];
            for (uint32_t d : deadRanks) {
              const ReadRange adopted = intersectRanges(mine, oldRanges[d]);
              if (adopted.numNodes() == 0 && adopted.numEdges() == 0) {
                continue;
              }
              if (report != nullptr) {
                report->adoptedRanges.push_back(AdoptedEdgeRange{
                    newAlive[r], aliveOriginal[d], adopted.nodeBegin,
                    adopted.nodeEnd, adopted.edgeBegin, adopted.edgeEnd});
              }
            }
            const ReadRange keep =
                intersectRanges(mine, oldRanges[survivorOldRank[r]]);
            bytesReRead +=
                windowBytes(mine, withData) - windowBytes(keep, withData);
          }
          if (report != nullptr) {
            report->bytesReRead += bytesReRead;
          }
          if (obsSink.metrics) {
            obsSink.metrics->counter("cusp.partitioner.bytes_reread")
                .add(bytesReRead);
          }
        }
        aliveOriginal = std::move(newAlive);
        baseConfig.numHosts = m;
        if (checkpoints) {
          // Old-base checkpoints carry numHosts == old size and would be
          // rejected anyway (with a warning); the shrunk base gets its own
          // epoch-stamped directory.
          baseConfig.resilience.checkpointDir =
              config.resilience.checkpointDir + "/e" + std::to_string(epoch);
        }
        if (config.resilience.faultPlan != nullptr) {
          // Project the ORIGINAL plan onto the survivors: faults pinned to
          // evicted hosts disappear; the rest follow their host to its new
          // rank. (A transient crash that already fired may fire once more
          // in the fresh injector — it is retryable and merely costs an
          // attempt.)
          baseConfig.resilience.faultPlan =
              std::make_shared<comm::FaultPlan>(remapFaultPlan(
                  *config.resilience.faultPlan, aliveOriginal));
        }
        baseInjector = makeInjector(baseConfig);
        if (stragglerMonitor) {
          // Fresh survivor-sized monitor: the condemned ranks are gone and
          // the survivors restart blame from zero in the new rank space.
          // Soft reports already emitted stay in the report tally.
          softReportsRetired += stragglerMonitor->totalSoftReports();
          stragglerMonitor = std::make_shared<comm::StragglerMonitor>(m);
        }
        if (const auto fence = support::writeFence()) {
          // Fences are indexed in base-rank space and the rebase renumbers
          // it. The fenced ranks just left the base with their eviction, so
          // the protection they provided is moot (nothing writes as them
          // any more, and the shrunk base gets its own epoch directory);
          // lifting keeps a stale fence from misapplying to a reused rank.
          for (uint32_t h : fence->fencedHosts()) {
            fence->lift(h);
          }
        }
        healRejoin = false;
        pendingRedistribution.clear();
        pendingReplicaBytes = 0;
        recordIndexOfRank.clear();
        newBase = true;  // fresh attempt budget for the shrunk cluster
      }
    }
  }
}

PartitionResult partitionGraphCsc(const graph::GraphFile& cscFile,
                                  const PartitionPolicy& policy,
                                  const PartitionerConfig& config) {
  PartitionResult result = partitionGraph(cscFile, policy, config);
  // The streamed file was the transpose of the logical graph, so each
  // partition's orientation flag flips relative to the logical graph: a
  // plain run produced in-edge rows (CSC of the logical graph), and a
  // buildTranspose run produced out-edge rows (CSR of the logical graph).
  for (DistGraph& part : result.partitions) {
    part.isTransposed = !part.isTransposed;
  }
  return result;
}

}  // namespace cusp::core
