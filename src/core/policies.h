// Customization points of the CuSP framework: the getMaster and
// getEdgeOwner rules (paper Section III) and the named policies built from
// them (paper Table II).
//
// A partitioning policy is one master rule plus one edge rule:
//
//   getMaster(prop, nodeId, mstate, masters) -> partition of nodeId's master
//   getEdgeOwner(prop, srcId, dstId, srcMaster, dstMaster, estate)
//       -> partition owning edge (srcId, dstId)
//
// Rules declare whether they use partitioning state and (for master rules)
// whether they query neighbors' master assignments. A master rule that uses
// neither is a *pure function*: CuSP then skips all master synchronization
// and replicates the computation on each host instead (paper Section IV-D5).
//
// Built-in master rules: Contiguous, ContiguousEB, Fennel, FennelEB
// (paper Algorithm 1). Built-in edge rules: Source, Dest, Hybrid, Cartesian
// (paper Algorithm 2 plus the Dest mirror of Source). Table II policies:
//
//   EEC = ContiguousEB + Source      HVC = ContiguousEB + Hybrid
//   CVC = ContiguousEB + Cartesian   FEC = FennelEB     + Source
//   GVC = FennelEB     + Hybrid      SVC = FennelEB     + Cartesian
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/properties.h"
#include "core/state.h"

namespace cusp::core {

// Sentinel returned by a MasterLookup when the queried node has not been
// assigned yet (or is unknown to this host).
inline constexpr uint32_t kNoMaster = UINT32_MAX;

// Query of previously assigned masters (the `masters` argument of
// getMaster). Returns kNoMaster when unknown.
using MasterLookup = std::function<uint32_t(uint64_t)>;

using MasterRuleFn = std::function<uint32_t(
    const GraphProperties& prop, uint64_t nodeId, PartitionState& mstate,
    const MasterLookup& masters)>;

using EdgeRuleFn = std::function<uint32_t(
    const GraphProperties& prop, uint64_t srcId, uint64_t dstId,
    uint32_t srcMaster, uint32_t dstMaster, PartitionState& estate)>;

struct MasterRule {
  std::string name;
  MasterRuleFn fn;
  bool usesState = false;            // reads/writes mstate
  bool usesNeighborMasters = false;  // queries the masters argument
  // Counters this rule needs registered in the partitioning state.
  std::vector<std::string> stateCounters;
  // Whether the rule uses PartitionState's per-node replica masks.
  bool usesNodeMasks = false;

  bool isPure() const { return !usesState && !usesNeighborMasters; }
};

// Priority function for streaming-window partitioning (the ADWISE class of
// paper Section II-B2, which the paper leaves as future work): given the
// current state, how confidently can this edge be placed right now? The
// windowed assignment loop repeatedly assigns the highest-scoring edge in
// its window instead of the next edge in stream order.
using WindowScoreFn = std::function<double(
    const GraphProperties& prop, uint64_t srcId, uint64_t dstId,
    PartitionState& estate)>;

struct EdgeRule {
  std::string name;
  EdgeRuleFn fn;
  bool usesState = false;
  std::vector<std::string> stateCounters;
  bool usesNodeMasks = false;
  // Optional: enables the streaming-window mode when the partitioner is
  // configured with windowSize > 1 (see PartitionerConfig).
  WindowScoreFn windowScore;
};

struct PartitionPolicy {
  std::string name;
  MasterRule master;
  EdgeRule edge;
};

// Parameters shared by the Fennel-family rules and the Hybrid edge rule
// (paper Section V-A: degree threshold 1000, gamma = 1.5,
// alpha = m * h^(gamma-1) / n^gamma).
struct FennelParams {
  double gamma = 1.5;
  uint64_t degreeThreshold = 1000;
};

// --- built-in master rules (paper Algorithm 1) ---

MasterRule masterContiguous();
MasterRule masterContiguousEB();
MasterRule masterFennel(const FennelParams& params = {});
MasterRule masterFennelEB(const FennelParams& params = {});

// Hash-based master placement (pure): the vertex-distribution scheme of
// hashing vertex-cut partitioners such as PowerGraph, HDRF and DBH.
MasterRule masterHash(uint64_t seed = 0);

// Linear Deterministic Greedy [Stanton & Kliot, KDD'12] (paper Table I,
// streaming edge-cut): prefer the partition holding the most already-placed
// neighbors, weighted by remaining capacity 1 - |P|/(n/k). History
// sensitive: uses the "nodes" counter and neighbors' master assignments.
MasterRule masterLdg();

// Assigns masters from a precomputed map (global node -> partition); this
// is how offline partitioner outputs (e.g. XtraPulp) are loaded into the
// same DistGraph machinery for quality comparison. Pure.
MasterRule masterFromMap(std::shared_ptr<const std::vector<uint32_t>> map);

// --- built-in edge rules (paper Algorithm 2) ---

EdgeRule edgeSource();
EdgeRule edgeDest();
EdgeRule edgeHybrid(uint64_t degreeThreshold = 1000);
EdgeRule edgeCartesian();

// Degree-Based Hashing [Xie et al., NIPS'14] (paper Table I, streaming
// vertex-cut): hash the endpoint with the smaller degree, so high-degree
// vertices are the ones replicated. Pure.
EdgeRule edgeDbh(uint64_t seed = 0);

struct HdrfParams {
  // Balance weight lambda; larger values trade replication for load
  // balance (HDRF paper uses ~1).
  double lambda = 1.0;
};

// High Degree Replicated First [Petroni et al., CIKM'15] (paper Table I,
// streaming vertex-cut): greedy scoring that keeps the low-degree endpoint
// local and replicates high-degree endpoints, with a load-balance term.
// History sensitive: tracks per-partition edge loads ("edges" counter) and
// per-vertex replica sets (PartitionState node masks; numPartitions <= 64).
EdgeRule edgeHdrf(const HdrfParams& params = {});

// PowerGraph's Greedy vertex-cut [Gonzalez et al., OSDI'12] (paper Table
// I): place an edge with a partition already holding both endpoints, else
// one endpoint, else the least-loaded partition; same state as HDRF.
EdgeRule edgeGreedy();

// ADWISE-style window score for the replica-tracking rules: edges whose
// endpoints already have replicas somewhere can be placed confidently, so
// they leave the window first and "hard" edges wait until more state has
// accumulated. Attach to edgeHdrf()/edgeGreedy() via withWindowScore().
double replicaAffinityScore(const GraphProperties& prop, uint64_t srcId,
                            uint64_t dstId, PartitionState& estate);

// Returns `rule` with the replica-affinity window score attached; combined
// with PartitionerConfig::windowSize > 1 this turns a streaming vertex-cut
// into a streaming-window one (paper Table I, ADWISE row).
EdgeRule withWindowScore(EdgeRule rule);

// Factorizes numPartitions into the CVC grid (pRows x pCols, pRows >= pCols,
// as close to square as possible). Exposed for tests and for the analytics
// engine's communication-pattern checks.
std::pair<uint32_t, uint32_t> cartesianGrid(uint32_t numPartitions);

// --- named policies (paper Table II) ---

// `name` in {EEC, HVC, CVC, FEC, GVC, SVC} (paper Table II) or one of the
// Table I literature policies expressed in the framework:
// {LDG, DBH, HDRF, GREEDY}. Case-insensitive.
PartitionPolicy makePolicy(const std::string& name,
                           const FennelParams& params = {});

// All six Table II policy names, in paper order.
const std::vector<std::string>& policyCatalog();

// Table II plus the Table I literature policies (LDG, DBH, HDRF, GREEDY).
const std::vector<std::string>& extendedPolicyCatalog();

}  // namespace cusp::core
