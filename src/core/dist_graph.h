// The per-host partition produced by CuSP: a local CSR graph over local ids
// plus the proxy bookkeeping (masters/mirrors) that distributed analytics
// engines synchronize over (paper Section II).
//
// Local id layout: masters first (sorted by global id), then mirrors
// (sorted by global id). Every vertex of the original graph has exactly one
// master proxy across all partitions; a mirror exists on a host iff some
// edge assigned to that host touches the vertex and the host is not the
// vertex's master.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/csr_graph.h"
#include "support/serialize.h"

namespace cusp::core {

struct DistGraph {
  uint32_t hostId = 0;
  uint32_t numHosts = 1;
  uint64_t numGlobalNodes = 0;
  uint64_t numGlobalEdges = 0;

  // Local topology over local ids; row i are the out-edges of local node i.
  // Only present nodes have rows (mirrors included). If the partition was
  // requested in CSC format this is the transpose (in-edges).
  graph::CsrGraph graph;
  bool isTransposed = false;  // true if `graph` holds the CSC orientation

  // Local ids [0, numMasters) are masters; [numMasters, numLocal) mirrors.
  uint64_t numMasters = 0;
  std::vector<uint64_t> localToGlobal;
  std::unordered_map<uint64_t, uint64_t> globalToLocal;

  // Host holding the master proxy of each local node (== hostId for
  // masters).
  std::vector<uint32_t> masterHostOfLocal;

  // Communication metadata for master/mirror synchronization:
  //  mirrorsOnHost[h]   — local ids of MY MASTERS that have a mirror on h
  //                       (broadcast destinations), sorted by global id.
  //  myMirrorsByOwner[h] — local ids of MY MIRRORS whose master is on h
  //                       (reduce destinations), sorted by global id.
  // For every pair of hosts (a, b): a.mirrorsOnHost[b] and
  // b.myMirrorsByOwner[a] list the same vertices in the same order.
  std::vector<std::vector<uint64_t>> mirrorsOnHost;
  std::vector<std::vector<uint64_t>> myMirrorsByOwner;

  uint64_t numLocalNodes() const { return localToGlobal.size(); }
  uint64_t numLocalEdges() const { return graph.numEdges(); }
  uint64_t numMirrors() const { return numLocalNodes() - numMasters; }
  bool isMaster(uint64_t localId) const { return localId < numMasters; }

  uint64_t globalId(uint64_t localId) const { return localToGlobal[localId]; }
  std::optional<uint64_t> localIdOf(uint64_t globalId) const {
    auto it = globalToLocal.find(globalId);
    if (it == globalToLocal.end()) {
      return std::nullopt;
    }
    return it->second;
  }

  // Materializes this partition's edges with global endpoints (and edge
  // data); used to validate that partitions reassemble into the input.
  std::vector<graph::Edge> edgesWithGlobalIds() const;
};

// Structural quality metrics over a full set of partitions (paper Section
// V-C discusses replication factor and node/edge balance).
struct PartitionQuality {
  double avgReplicationFactor = 0.0;  // total proxies / |V with proxies|
  uint64_t totalProxies = 0;
  uint64_t totalMasters = 0;
  uint64_t minLocalNodes = 0, maxLocalNodes = 0;
  uint64_t minLocalEdges = 0, maxLocalEdges = 0;
  double nodeImbalance = 0.0;  // max local nodes / avg local nodes
  double edgeImbalance = 0.0;  // max local edges / avg local edges
};

PartitionQuality computeQuality(std::span<const DistGraph> partitions);

// Gathers every partition's edges (global ids); sorted. Together with the
// input's sorted edge list this verifies "every edge assigned exactly once".
std::vector<graph::Edge> gatherAllEdges(std::span<const DistGraph> partitions);

// Binary (de)serialization of a partition — paper Section III-A: "These
// partitions can be written to disk if desired." The file carries the full
// DistGraph: local topology, id maps, master/mirror metadata, so a
// partition set written by `partition_tool` can be reloaded later and fed
// straight to the analytics engine. Format: "CDG1" magic followed by the
// serialized fields (see dist_graph.cpp), then a CRC32 footer
// (support/crc32.h). Readers verify the footer when present and accept
// legacy footerless files unchanged.
void saveDistGraph(const std::string& path, const DistGraph& part);
DistGraph loadDistGraph(const std::string& path);

// In-memory (de)serialization of the full DistGraph, shared by the .cdg
// file format and the phase-5 partitioning checkpoints. The byte stream is
// deterministic for a given partition (globalToLocal is rebuilt from
// localToGlobal, never serialized), so bit-identical partitions produce
// bit-identical streams — the property the recovery tests compare on.
void serializeDistGraph(support::SendBuffer& buf, const DistGraph& part);
DistGraph deserializeDistGraph(support::RecvBuffer& buf);

// Exhaustive structural validation of a partition set against the original
// graph; throws std::logic_error with a description on the first violation.
// Checks: exactly one master per vertex, local id layout, globalToLocal
// consistency, mirror metadata pairing across hosts, and (optionally) the
// edge multiset. Used by tests and by examples in debug mode.
void validatePartitions(const graph::CsrGraph& original,
                        std::span<const DistGraph> partitions,
                        bool checkEdgeMultiset = true);

}  // namespace cusp::core
