// Partitioning state for history-sensitive policies.
//
// Paper Section III-A: "Each partitioning rule can define its own custom
// type to track the state that can be queried and updated by it. CuSP
// transparently synchronizes this state across hosts."
//
// PartitionState holds two kinds of user state:
//
//  * named per-partition int64 counters (FennelEB uses "nodes" and
//    "edges"): each host keeps a synced global base plus a local atomic
//    delta; rules read base+delta (the host's current view) and add to the
//    delta; reconciliation sums deltas across hosts.
//
//  * an optional per-node partition bitmask store ("replica sets",
//    requires numPartitions <= 64): vertex-cut heuristics like HDRF and
//    PowerGraph's Greedy score an edge by which partitions already hold
//    replicas of its endpoints; reconciliation OR-merges masks across
//    hosts.
//
// synchronize() reconciles both kinds in one bulk-synchronous step (paper
// Section IV-D4); exchangeAsync()/finishExchanges() do the same without
// barriers for master-assignment rounds (IV-D5). reset() restores initial
// values so that re-running a phase (graph construction replays edge
// assignment) observes the same state.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "comm/network.h"

namespace cusp::core {

class PartitionState {
 public:
  using CounterId = uint32_t;
  static constexpr CounterId kInvalidCounter = UINT32_MAX;

  PartitionState() = default;

  // --- setup (before partitioning starts) ---

  CounterId registerCounter(const std::string& name) {
    for (CounterId i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        return i;
      }
    }
    names_.push_back(name);
    return static_cast<CounterId>(names_.size() - 1);
  }

  CounterId counterId(const std::string& name) const {
    for (CounterId i = 0; i < names_.size(); ++i) {
      if (names_[i] == name) {
        return i;
      }
    }
    return kInvalidCounter;
  }

  // Opts into the per-node partition-mask store (HDRF/Greedy-style replica
  // tracking). Must be called before initialize().
  void enableNodeMasks() { nodeMasksEnabled_ = true; }
  bool nodeMasksEnabled() const { return nodeMasksEnabled_; }

  // Sizes every counter for `numPartitions` entries, zeroed.
  void initialize(uint32_t numPartitions) {
    if (nodeMasksEnabled_ && numPartitions > 64) {
      throw std::invalid_argument(
          "PartitionState: node masks support at most 64 partitions");
    }
    numPartitions_ = numPartitions;
    base_.assign(names_.size() * numPartitions, 0);
    delta_ = std::vector<std::atomic<int64_t>>(names_.size() * numPartitions);
    masks_.clear();
    maskDeltas_.clear();
  }

  bool empty() const { return names_.empty() && !nodeMasksEnabled_; }
  uint32_t numCounters() const { return static_cast<uint32_t>(names_.size()); }
  uint32_t numPartitions() const { return numPartitions_; }
  const std::vector<std::string>& counterNames() const { return names_; }

  // --- rule-facing API (thread-safe) ---

  int64_t read(CounterId counter, uint32_t partition) const {
    const size_t slot = index(counter, partition);
    return base_[slot] + delta_[slot].load(std::memory_order_relaxed);
  }

  void add(CounterId counter, uint32_t partition, int64_t value) {
    delta_[index(counter, partition)].fetch_add(value,
                                                std::memory_order_relaxed);
  }

  // Bitmask of partitions known (to this host's view) to hold a replica of
  // `node`; bit p set <=> partition p has one. 0 if the node is unseen.
  uint64_t nodeMask(uint64_t node) const {
    std::lock_guard<std::mutex> lock(maskMutex_);
    auto it = masks_.find(node);
    return it == masks_.end() ? 0 : it->second;
  }

  // Records that partitions in `bits` now hold replicas of `node`.
  void orNodeMask(uint64_t node, uint64_t bits) {
    std::lock_guard<std::mutex> lock(maskMutex_);
    masks_[node] |= bits;
    maskDeltas_[node] |= bits;
  }

  // --- partitioner-facing API ---

  // Bulk-synchronous reconciliation: ships this host's deltas (counter
  // sums and mask OR-updates) to every other host and blocks until every
  // host's deltas for every round so far have been absorbed. Collective:
  // every host must call it the same number of times.
  void synchronize(comm::Network& net, comm::HostId me) {
    exchangeAsync(net, me);
    finishExchanges(net, me);
  }

  // Asynchronous reconciliation used inside master-assignment rounds (paper
  // IV-D5: no barriers between rounds). Folds the local deltas into the
  // base, ships them to every other host (fire-and-forget), and absorbs
  // whatever deltas have already arrived without blocking.
  void exchangeAsync(comm::Network& net, comm::HostId me) {
    if (empty() || net.numHosts() == 1) {
      return;
    }
    std::vector<int64_t> deltas(base_.size());
    for (size_t i = 0; i < deltas.size(); ++i) {
      deltas[i] = delta_[i].exchange(0, std::memory_order_relaxed);
      base_[i] += deltas[i];
    }
    std::vector<uint64_t> maskNodes;
    std::vector<uint64_t> maskBits;
    if (nodeMasksEnabled_) {
      std::lock_guard<std::mutex> lock(maskMutex_);
      maskNodes.reserve(maskDeltas_.size());
      maskBits.reserve(maskDeltas_.size());
      for (const auto& [node, bits] : maskDeltas_) {
        maskNodes.push_back(node);
        maskBits.push_back(bits);
      }
      maskDeltas_.clear();
    }
    for (comm::HostId h = 0; h < net.numHosts(); ++h) {
      if (h == me) {
        continue;
      }
      auto writer = net.packedWriter(me, h, comm::kTagStateReduce);
      support::serializeAll(writer, deltas, maskNodes, maskBits);
      writer.commit();
    }
    ++roundsSent_;
    drainPending(net, me);
  }

  // Absorbs queued delta messages without blocking.
  void drainPending(comm::Network& net, comm::HostId me) {
    while (auto msg = net.tryRecv(me, comm::kTagStateReduce)) {
      absorb(*msg);
    }
  }

  // Blocks until every exchange round initiated so far has been absorbed
  // from every peer (all hosts run the same number of rounds); call after
  // the last round so no deltas leak into later phases.
  void finishExchanges(comm::Network& net, comm::HostId me) {
    if (empty() || net.numHosts() == 1) {
      return;
    }
    // Committed deltas may still sit in aggregation channels; ship them
    // before blocking so every peer can finish its own expected count.
    net.flushAggregated(me);
    const uint64_t expected = roundsSent_ * (net.numHosts() - 1);
    while (received_ < expected) {
      auto msg = net.recv(me, comm::kTagStateReduce);
      absorb(msg);
    }
  }

  uint64_t deltaMessagesReceived() const { return received_; }

  // --- checkpoint support ---

  // Serializes the full state (synced base, unsent deltas, replica masks
  // and unsent mask deltas) so a recovery attempt can resume a phase with
  // the views this host had at the checkpoint. Mask maps are emitted in
  // sorted node order so identical states produce identical bytes.
  void serializeSnapshot(support::SendBuffer& buf) const {
    support::serialize(buf, base_);
    std::vector<int64_t> deltas(delta_.size());
    for (size_t i = 0; i < delta_.size(); ++i) {
      deltas[i] = delta_[i].load(std::memory_order_relaxed);
    }
    support::serialize(buf, deltas);
    std::lock_guard<std::mutex> lock(maskMutex_);
    serializeSortedMap(buf, masks_);
    serializeSortedMap(buf, maskDeltas_);
  }

  // Inverse of serializeSnapshot(); the state must already be initialize()d
  // with the same counters and partition count. Exchange-round bookkeeping
  // restarts at zero — the resumed phase replays its own exchange rounds.
  void restoreSnapshot(support::RecvBuffer& buf) {
    std::vector<int64_t> base;
    std::vector<int64_t> deltas;
    support::deserialize(buf, base);
    support::deserialize(buf, deltas);
    if (base.size() != base_.size() || deltas.size() != delta_.size()) {
      throw std::logic_error(
          "PartitionState: snapshot does not match registered counters");
    }
    base_ = std::move(base);
    for (size_t i = 0; i < delta_.size(); ++i) {
      delta_[i].store(deltas[i], std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(maskMutex_);
    deserializeMap(buf, masks_);
    deserializeMap(buf, maskDeltas_);
    received_ = 0;
    roundsSent_ = 0;
  }

  // Restores initial (zero/empty) values; paper Section IV-B4.
  void reset() {
    std::fill(base_.begin(), base_.end(), 0);
    for (auto& d : delta_) {
      d.store(0, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(maskMutex_);
    masks_.clear();
    maskDeltas_.clear();
  }

 private:
  static void serializeSortedMap(
      support::SendBuffer& buf,
      const std::unordered_map<uint64_t, uint64_t>& map) {
    std::vector<std::pair<uint64_t, uint64_t>> entries(map.begin(), map.end());
    std::sort(entries.begin(), entries.end());
    support::serialize(buf, entries);
  }

  static void deserializeMap(support::RecvBuffer& buf,
                             std::unordered_map<uint64_t, uint64_t>& map) {
    std::vector<std::pair<uint64_t, uint64_t>> entries;
    support::deserialize(buf, entries);
    map.clear();
    map.insert(entries.begin(), entries.end());
  }

  void absorb(comm::Message& msg) {
    std::vector<int64_t> deltas;
    std::vector<uint64_t> maskNodes;
    std::vector<uint64_t> maskBits;
    support::deserializeAll(msg.payload, deltas, maskNodes, maskBits);
    if (deltas.size() != base_.size()) {
      throw std::logic_error("PartitionState: mismatched delta vector");
    }
    for (size_t i = 0; i < base_.size(); ++i) {
      base_[i] += deltas[i];
    }
    if (!maskNodes.empty()) {
      // Remote masks go into the merged view only, not back into the
      // outgoing deltas (every host already ships its own updates to
      // everyone, so re-forwarding would only duplicate traffic).
      std::lock_guard<std::mutex> lock(maskMutex_);
      for (size_t i = 0; i < maskNodes.size(); ++i) {
        masks_[maskNodes[i]] |= maskBits[i];
      }
    }
    ++received_;
  }

  size_t index(CounterId counter, uint32_t partition) const {
    if (counter >= names_.size() || partition >= numPartitions_) {
      throw std::out_of_range("PartitionState: bad counter/partition");
    }
    return static_cast<size_t>(counter) * numPartitions_ + partition;
  }

  std::vector<std::string> names_;
  uint32_t numPartitions_ = 0;
  std::vector<int64_t> base_;
  std::vector<std::atomic<int64_t>> delta_;
  uint64_t received_ = 0;
  uint64_t roundsSent_ = 0;

  bool nodeMasksEnabled_ = false;
  mutable std::mutex maskMutex_;
  std::unordered_map<uint64_t, uint64_t> masks_;       // merged view
  std::unordered_map<uint64_t, uint64_t> maskDeltas_;  // unsent local updates
};

}  // namespace cusp::core
