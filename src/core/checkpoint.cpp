#include "core/checkpoint.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <stdexcept>

#include "obs/obs.h"
#include "support/crc32.h"
#include "support/logging.h"
#include "support/storage.h"

namespace cusp::core {

namespace {

// Checkpoint I/O is rare (a handful of files per run), so the store looks
// the sink up per operation instead of caching cells like the network does.
void countCheckpoint(const char* name, uint64_t n) {
  if (!obs::attached()) {
    return;
  }
  if (const auto registry = obs::sink().metrics) {
    registry->counter(name).add(n);
  }
}

struct CheckpointHeader {
  uint64_t magic = kCheckpointMagic;
  uint32_t host = 0;
  uint32_t numHosts = 0;
  uint32_t phase = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(CheckpointHeader) == 24);

// mkdir -p: epoch stores live in subdirectories of the configured
// checkpoint dir (<dir>/e<N>), so a single-level mkdir is not enough.
void makeDirs(const std::string& dir) {
  for (size_t pos = 1; pos <= dir.size(); ++pos) {
    if (pos == dir.size() || dir[pos] == '/') {
      ::mkdir(dir.substr(0, pos).c_str(), 0777);  // fine if it exists
    }
  }
}

// A corrupt image (torn write, bit rot) is moved aside rather than deleted:
// it stops shadowing the escalation ladder (buddy replica, earlier epoch)
// while staying on disk for post-mortem inspection. A quarantined file also
// never gets mistaken for a valid checkpoint again, so retry loops cannot
// oscillate on it.
void quarantineCorrupt(const std::string& path) {
  const std::string quarantined = path + ".quarantined";
  if (std::rename(path.c_str(), quarantined.c_str()) == 0) {
    countCheckpoint("cusp.checkpoint.quarantined", 1);
    CUSP_LOG_WARN() << "quarantined corrupt checkpoint " << path << " -> "
                    << quarantined;
  }
}

// Validates the file at `path` as a checkpoint of (host, numHosts, phase)
// and returns the bare payload; nullopt when missing or invalid. A wrong
// `numHosts` in an otherwise valid file means the directory is being reused
// across cluster sizes — worth a warning, not silence.
std::optional<std::vector<uint8_t>> loadFromPath(const std::string& path,
                                                 uint32_t host,
                                                 uint32_t numHosts,
                                                 uint32_t phase) {
  std::optional<std::vector<uint8_t>> bytes;
  try {
    bytes = support::readFileBytes(path);
  } catch (const support::StorageError&) {
    // A failed read is indistinguishable from an absent checkpoint for the
    // caller: report nullopt so the escalation ladder (replica, earlier
    // epoch, re-partition) takes over.
    countCheckpoint("cusp.checkpoint.read_failures", 1);
    return std::nullopt;
  }
  if (!bytes) {
    return std::nullopt;
  }
  if (support::verifyAndStripCrcFooter(*bytes) !=
      support::CrcFooterStatus::kVerified) {
    countCheckpoint("cusp.checkpoint.crc_failures", 1);
    quarantineCorrupt(path);
    return std::nullopt;  // checkpoints always carry a footer; no legacy path
  }
  if (bytes->size() < sizeof(CheckpointHeader)) {
    return std::nullopt;
  }
  CheckpointHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  if (header.magic != kCheckpointMagic || header.host != host ||
      header.phase != phase) {
    return std::nullopt;
  }
  if (header.numHosts != numHosts) {
    CUSP_LOG_WARN() << "rejecting checkpoint " << path << ": written for "
                    << header.numHosts << " hosts, expected " << numHosts
                    << " (stale checkpoint directory?)";
    return std::nullopt;
  }
  bytes->erase(bytes->begin(), bytes->begin() + sizeof(header));
  countCheckpoint("cusp.checkpoint.bytes_read", bytes->size());
  return bytes;
}

// Durable atomic write of a header+payload+CRC checkpoint image, via the
// storage seam's full commit protocol (tmp + fflush + fsync + rename +
// directory fsync). Throws support::StorageError on failure — callers
// dispatch on its kind (ENOSPC disables checkpointing; anything else skips
// this checkpoint and carries on).
void writeCheckpointFile(const std::string& finalPath, uint32_t host,
                         uint32_t numHosts, uint32_t phase,
                         const support::SendBuffer& payload) {
  CheckpointHeader header;
  header.host = host;
  header.numHosts = numHosts;
  header.phase = phase;
  // Fencing-token check (split-brain protection): when a WriteFence is
  // attached, a fenced writer — the minority side of a network partition —
  // is refused HERE, before any byte touches the disk, so a fenced host can
  // neither clobber its primary image nor buddy-replicate stale state.
  // Refusal leaves no tmp debris (unlike an injected write fault, nothing
  // was started). `host` is the OWNER of the image, which for a buddy
  // replica is also the writer, so one check covers both paths.
  if (auto fence = support::writeFence()) {
    if (fence->isFenced(host)) {
      fence->countFencedWriteAttempt();
      countCheckpoint("cusp.checkpoint.fenced_writes", 1);
      throw support::StorageError(
          support::StorageError::Kind::kWriteFailed, finalPath,
          "writer is fenced at epoch " + std::to_string(fence->epoch()) +
              " (split-brain protection)");
    }
    // Stamp the image with the fencing epoch it was written under; the
    // formerly-reserved header word is the stamp slot.
    header.reserved = static_cast<uint32_t>(fence->epoch());
  }
  std::vector<uint8_t> bytes(sizeof(header) + payload.size());
  std::memcpy(bytes.data(), &header, sizeof(header));
  if (payload.size() > 0) {  // data() may be null on an empty buffer
    std::memcpy(bytes.data() + sizeof(header), payload.data(),
                payload.size());
  }
  support::appendCrcFooter(bytes);
  try {
    support::atomicWriteFile(finalPath, bytes);
  } catch (const support::StorageError&) {
    countCheckpoint("cusp.checkpoint.write_failures", 1);
    throw;
  }
  countCheckpoint("cusp.checkpoint.files_written", 1);
  countCheckpoint("cusp.checkpoint.bytes_written", bytes.size());
}

}  // namespace

std::string checkpointPath(const std::string& dir, uint32_t host,
                           uint32_t phase) {
  return dir + "/h" + std::to_string(host) + ".p" + std::to_string(phase) +
         ".ckpt";
}

std::string checkpointReplicaPath(const std::string& dir, uint32_t owner,
                                  uint32_t numHosts, uint32_t phase) {
  const uint32_t buddy = (owner + 1) % numHosts;
  return dir + "/h" + std::to_string(buddy) + ".p" + std::to_string(phase) +
         ".buddy" + std::to_string(owner) + ".ckpt";
}

void saveCheckpoint(const std::string& dir, uint32_t host, uint32_t numHosts,
                    uint32_t phase, const support::SendBuffer& payload) {
  makeDirs(dir);
  writeCheckpointFile(checkpointPath(dir, host, phase), host, numHosts, phase,
                      payload);
}

void saveCheckpointReplica(const std::string& dir, uint32_t owner,
                           uint32_t numHosts, uint32_t phase,
                           const support::SendBuffer& payload) {
  makeDirs(dir);
  writeCheckpointFile(checkpointReplicaPath(dir, owner, numHosts, phase),
                      owner, numHosts, phase, payload);
  countCheckpoint("cusp.checkpoint.replicas_written", 1);
}

std::optional<std::vector<uint8_t>> loadCheckpoint(const std::string& dir,
                                                   uint32_t host,
                                                   uint32_t numHosts,
                                                   uint32_t phase) {
  return loadFromPath(checkpointPath(dir, host, phase), host, numHosts,
                      phase);
}

std::optional<std::vector<uint8_t>> loadCheckpointReplica(
    const std::string& dir, uint32_t owner, uint32_t numHosts,
    uint32_t phase) {
  return loadFromPath(checkpointReplicaPath(dir, owner, numHosts, phase),
                      owner, numHosts, phase);
}

std::optional<std::vector<uint8_t>> loadCheckpointOrReplica(
    const std::string& dir, uint32_t host, uint32_t numHosts,
    uint32_t phase) {
  if (auto own = loadCheckpoint(dir, host, numHosts, phase)) {
    return own;
  }
  return loadCheckpointReplica(dir, host, numHosts, phase);
}

uint32_t latestValidCheckpoint(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase) {
  for (uint32_t phase = maxPhase; phase >= 1; --phase) {
    if (loadCheckpointOrReplica(dir, host, numHosts, phase)) {
      return phase;
    }
  }
  return 0;
}

namespace {

// A checkpoint leaves up to three artifacts: the image itself, an aborted
// tmp, and a quarantined corrupt copy — remove all of them together.
void removeCheckpointArtifacts(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  std::remove((path + ".quarantined").c_str());
}

}  // namespace

void removeCheckpoints(const std::string& dir, uint32_t host,
                       uint32_t maxPhase) {
  for (uint32_t phase = 1; phase <= maxPhase; ++phase) {
    removeCheckpointArtifacts(checkpointPath(dir, host, phase));
  }
}

void removeHostCheckpointStore(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase) {
  for (uint32_t phase = 1; phase <= maxPhase; ++phase) {
    removeCheckpointArtifacts(checkpointPath(dir, host, phase));
    for (uint32_t owner = 0; owner < numHosts; ++owner) {
      if ((owner + 1) % numHosts != host) {
        continue;  // only replicas physically stored on `host`
      }
      removeCheckpointArtifacts(
          checkpointReplicaPath(dir, owner, numHosts, phase));
    }
  }
}

uint32_t garbageCollectCheckpointTmp(const std::string& dir,
                                     double quarantineAgeSeconds) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return 0;
  }
  static constexpr std::string_view kTmpSuffix = ".ckpt.tmp";
  static constexpr std::string_view kQuarantineSuffix = ".quarantined";
  const std::time_t now = std::time(nullptr);
  uint32_t removedTmp = 0;
  uint32_t removedQuarantined = 0;
  while (dirent* entry = ::readdir(d)) {
    const std::string_view name = entry->d_name;
    auto hasSuffix = [&](std::string_view suffix) {
      return name.size() >= suffix.size() &&
             name.substr(name.size() - suffix.size()) == suffix;
    };
    const std::string path = dir + "/" + std::string(name);
    if (hasSuffix(kTmpSuffix)) {
      // Orphaned commit debris is dead the moment the run that wrote it is
      // gone; no age grace needed.
      if (std::remove(path.c_str()) == 0) {
        ++removedTmp;
      }
      continue;
    }
    if (hasSuffix(kQuarantineSuffix)) {
      // Quarantined corrupt checkpoints are forensic evidence: keep them
      // until they have aged past the threshold, so a run (or a person)
      // inspecting a fresh quarantine never has it swept away mid-look.
      struct stat st {};
      if (::stat(path.c_str(), &st) != 0) {
        continue;
      }
      const double age = std::difftime(now, st.st_mtime);
      if (age < quarantineAgeSeconds) {
        continue;
      }
      if (std::remove(path.c_str()) == 0) {
        ++removedQuarantined;
      }
    }
  }
  ::closedir(d);
  if (removedTmp > 0) {
    CUSP_LOG_WARN() << "garbage-collected " << removedTmp
                    << " orphaned .ckpt.tmp file(s) in " << dir;
  }
  if (removedQuarantined > 0) {
    countCheckpoint("cusp.checkpoint.quarantine_collected",
                    removedQuarantined);
    CUSP_LOG_WARN() << "garbage-collected " << removedQuarantined
                    << " stale .quarantined file(s) in " << dir;
  }
  return removedTmp + removedQuarantined;
}

void ensureStoreDirs(const std::string& dir) { makeDirs(dir); }

}  // namespace cusp::core
