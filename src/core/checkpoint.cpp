#include "core/checkpoint.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "support/crc32.h"

namespace cusp::core {

namespace {

struct CheckpointHeader {
  uint64_t magic = kCheckpointMagic;
  uint32_t host = 0;
  uint32_t numHosts = 0;
  uint32_t phase = 0;
  uint32_t reserved = 0;
};
static_assert(sizeof(CheckpointHeader) == 24);

std::optional<std::vector<uint8_t>> readWholeFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<uint8_t> bytes(size < 0 ? 0 : static_cast<size_t>(size));
  const size_t got = bytes.empty()
                         ? 0
                         : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return std::nullopt;
  }
  return bytes;
}

}  // namespace

std::string checkpointPath(const std::string& dir, uint32_t host,
                           uint32_t phase) {
  return dir + "/h" + std::to_string(host) + ".p" + std::to_string(phase) +
         ".ckpt";
}

void saveCheckpoint(const std::string& dir, uint32_t host, uint32_t numHosts,
                    uint32_t phase, const support::SendBuffer& payload) {
  ::mkdir(dir.c_str(), 0777);  // fine if it already exists

  CheckpointHeader header;
  header.host = host;
  header.numHosts = numHosts;
  header.phase = phase;
  std::vector<uint8_t> bytes(sizeof(header) + payload.size());
  std::memcpy(bytes.data(), &header, sizeof(header));
  if (payload.size() > 0) {  // data() may be null on an empty buffer
    std::memcpy(bytes.data() + sizeof(header), payload.data(),
                payload.size());
  }
  support::appendCrcFooter(bytes);

  const std::string finalPath = checkpointPath(dir, host, phase);
  const std::string tmpPath = finalPath + ".tmp";
  FILE* f = std::fopen(tmpPath.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("saveCheckpoint: cannot open " + tmpPath);
  }
  const size_t wrote = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (wrote != bytes.size() || !flushed) {
    std::remove(tmpPath.c_str());
    throw std::runtime_error("saveCheckpoint: short write to " + tmpPath);
  }
  if (std::rename(tmpPath.c_str(), finalPath.c_str()) != 0) {
    std::remove(tmpPath.c_str());
    throw std::runtime_error("saveCheckpoint: cannot rename to " + finalPath);
  }
}

std::optional<std::vector<uint8_t>> loadCheckpoint(const std::string& dir,
                                                   uint32_t host,
                                                   uint32_t numHosts,
                                                   uint32_t phase) {
  auto bytes = readWholeFile(checkpointPath(dir, host, phase));
  if (!bytes) {
    return std::nullopt;
  }
  if (support::verifyAndStripCrcFooter(*bytes) !=
      support::CrcFooterStatus::kVerified) {
    return std::nullopt;  // checkpoints always carry a footer; no legacy path
  }
  if (bytes->size() < sizeof(CheckpointHeader)) {
    return std::nullopt;
  }
  CheckpointHeader header;
  std::memcpy(&header, bytes->data(), sizeof(header));
  if (header.magic != kCheckpointMagic || header.host != host ||
      header.numHosts != numHosts || header.phase != phase) {
    return std::nullopt;
  }
  bytes->erase(bytes->begin(), bytes->begin() + sizeof(header));
  return bytes;
}

uint32_t latestValidCheckpoint(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase) {
  for (uint32_t phase = maxPhase; phase >= 1; --phase) {
    if (loadCheckpoint(dir, host, numHosts, phase)) {
      return phase;
    }
  }
  return 0;
}

void removeCheckpoints(const std::string& dir, uint32_t host,
                       uint32_t maxPhase) {
  for (uint32_t phase = 1; phase <= maxPhase; ++phase) {
    std::remove(checkpointPath(dir, host, phase).c_str());
    std::remove((checkpointPath(dir, host, phase) + ".tmp").c_str());
  }
}

}  // namespace cusp::core
