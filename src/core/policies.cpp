#include "core/policies.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

#include "support/random.h"

namespace cusp::core {

namespace {

// ceil(a / b) for positive integers.
uint64_t ceilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

// alpha = m * h^(gamma-1) / n^gamma (paper Section V-A).
double fennelAlpha(const GraphProperties& prop, double gamma) {
  const double n = static_cast<double>(std::max<uint64_t>(1, prop.getNumNodes()));
  const double m = static_cast<double>(std::max<uint64_t>(1, prop.getNumEdges()));
  const double h = static_cast<double>(prop.getNumPartitions());
  return m * std::pow(h, gamma - 1.0) / std::pow(n, gamma);
}

uint32_t contiguousOf(const GraphProperties& prop, uint64_t nodeId) {
  const uint64_t blockSize =
      std::max<uint64_t>(1, ceilDiv(prop.getNumNodes(), prop.getNumPartitions()));
  const uint64_t part = nodeId / blockSize;
  return static_cast<uint32_t>(
      std::min<uint64_t>(part, prop.getNumPartitions() - 1));
}

uint32_t contiguousEbOf(const GraphProperties& prop, uint64_t nodeId) {
  const uint64_t edgeBlockSize = std::max<uint64_t>(
      1, ceilDiv(prop.getNumEdges() + 1, prop.getNumPartitions()));
  const uint64_t part = prop.getNodeOutEdge(nodeId, 0) / edgeBlockSize;
  return static_cast<uint32_t>(
      std::min<uint64_t>(part, prop.getNumPartitions() - 1));
}

// Shared scoring loop of Fennel/FennelEB: argmax over partitions of
// -(alpha * gamma * load^(gamma-1)) + (# neighbors already on p).
// Ties break toward the lowest partition index (deterministic).
uint32_t fennelArgMax(const GraphProperties& prop, uint64_t nodeId,
                      const MasterLookup& masters,
                      const std::function<double(uint32_t)>& loadOf,
                      double alpha, double gamma) {
  const uint32_t k = prop.getNumPartitions();
  std::vector<double> score(k);
  for (uint32_t p = 0; p < k; ++p) {
    score[p] = -(alpha * gamma * std::pow(loadOf(p), gamma - 1.0));
  }
  if (masters) {
    for (uint64_t n : prop.getNodeOutNeighbors(nodeId)) {
      const uint32_t m = masters(n);
      if (m != kNoMaster) {
        score[m] += 1.0;
      }
    }
  }
  uint32_t best = 0;
  for (uint32_t p = 1; p < k; ++p) {
    if (score[p] > score[best]) {
      best = p;
    }
  }
  return best;
}

}  // namespace

MasterRule masterContiguous() {
  MasterRule rule;
  rule.name = "Contiguous";
  rule.fn = [](const GraphProperties& prop, uint64_t nodeId, PartitionState&,
               const MasterLookup&) { return contiguousOf(prop, nodeId); };
  return rule;
}

MasterRule masterContiguousEB() {
  MasterRule rule;
  rule.name = "ContiguousEB";
  rule.fn = [](const GraphProperties& prop, uint64_t nodeId, PartitionState&,
               const MasterLookup&) { return contiguousEbOf(prop, nodeId); };
  return rule;
}

MasterRule masterFennel(const FennelParams& params) {
  MasterRule rule;
  rule.name = "Fennel";
  rule.usesState = true;
  rule.usesNeighborMasters = true;
  rule.stateCounters = {"nodes"};
  const double gamma = params.gamma;
  rule.fn = [gamma](const GraphProperties& prop, uint64_t nodeId,
                    PartitionState& mstate, const MasterLookup& masters) {
    const auto nodesCounter = mstate.counterId("nodes");
    const double alpha = fennelAlpha(prop, gamma);
    const uint32_t part = fennelArgMax(
        prop, nodeId, masters,
        [&](uint32_t p) {
          return static_cast<double>(mstate.read(nodesCounter, p));
        },
        alpha, gamma);
    mstate.add(nodesCounter, part, 1);
    return part;
  };
  return rule;
}

MasterRule masterFennelEB(const FennelParams& params) {
  MasterRule rule;
  rule.name = "FennelEB";
  rule.usesState = true;
  rule.usesNeighborMasters = true;
  rule.stateCounters = {"nodes", "edges"};
  const double gamma = params.gamma;
  const uint64_t threshold = params.degreeThreshold;
  rule.fn = [gamma, threshold](const GraphProperties& prop, uint64_t nodeId,
                               PartitionState& mstate,
                               const MasterLookup& masters) {
    // Very high out-degree nodes fall back to ContiguousEB (paper
    // Algorithm 1, FennelEB): scoring them is expensive and their edge
    // block dominates anyway.
    if (prop.getNodeOutDegree(nodeId) > threshold) {
      return contiguousEbOf(prop, nodeId);
    }
    const auto nodesCounter = mstate.counterId("nodes");
    const auto edgesCounter = mstate.counterId("edges");
    const double mu =
        static_cast<double>(prop.getNumNodes()) /
        static_cast<double>(std::max<uint64_t>(1, prop.getNumEdges()));
    const double alpha = fennelAlpha(prop, gamma);
    const uint32_t part = fennelArgMax(
        prop, nodeId, masters,
        [&](uint32_t p) {
          const double nodes = static_cast<double>(mstate.read(nodesCounter, p));
          const double edges = static_cast<double>(mstate.read(edgesCounter, p));
          return (nodes + mu * edges) / 2.0;
        },
        alpha, gamma);
    mstate.add(nodesCounter, part, 1);
    // The load heuristic balances *outgoing edges of assigned nodes* (paper
    // Section III-B), so the edge counter grows by the node's out-degree.
    mstate.add(edgesCounter, part,
               static_cast<int64_t>(prop.getNodeOutDegree(nodeId)));
    return part;
  };
  return rule;
}

MasterRule masterHash(uint64_t seed) {
  MasterRule rule;
  rule.name = "Hash";
  rule.fn = [seed](const GraphProperties& prop, uint64_t nodeId,
                   PartitionState&, const MasterLookup&) {
    return static_cast<uint32_t>(support::hashU64(nodeId ^ seed) %
                                 prop.getNumPartitions());
  };
  return rule;
}

MasterRule masterLdg() {
  MasterRule rule;
  rule.name = "LDG";
  rule.usesState = true;
  rule.usesNeighborMasters = true;
  rule.stateCounters = {"nodes"};
  rule.fn = [](const GraphProperties& prop, uint64_t nodeId,
               PartitionState& mstate, const MasterLookup& masters) {
    const uint32_t k = prop.getNumPartitions();
    const auto nodesCounter = mstate.counterId("nodes");
    const double capacity =
        static_cast<double>(std::max<uint64_t>(1, prop.getNumNodes())) /
        static_cast<double>(k);
    // neighborsOn[p]: already-placed out-neighbors of nodeId on p.
    std::vector<double> neighborsOn(k, 0.0);
    if (masters) {
      for (uint64_t n : prop.getNodeOutNeighbors(nodeId)) {
        const uint32_t m = masters(n);
        if (m != kNoMaster) {
          neighborsOn[m] += 1.0;
        }
      }
    }
    uint32_t best = 0;
    double bestScore = -1.0;
    for (uint32_t p = 0; p < k; ++p) {
      const double size = static_cast<double>(mstate.read(nodesCounter, p));
      const double weight = 1.0 - size / capacity;
      // LDG's multiplicative penalty; a full partition scores <= 0, so an
      // emptier one always wins over it. Ties break to the smaller
      // partition (standard LDG tie-break), then to the lower index.
      const double score = neighborsOn[p] * std::max(weight, 0.0);
      const bool better =
          score > bestScore ||
          (score == bestScore &&
           mstate.read(nodesCounter, p) < mstate.read(nodesCounter, best));
      if (better) {
        best = p;
        bestScore = score;
      }
    }
    mstate.add(nodesCounter, best, 1);
    return best;
  };
  return rule;
}

MasterRule masterFromMap(std::shared_ptr<const std::vector<uint32_t>> map) {
  if (!map) {
    throw std::invalid_argument("masterFromMap: null map");
  }
  MasterRule rule;
  rule.name = "FromMap";
  rule.fn = [map = std::move(map)](const GraphProperties& prop, uint64_t nodeId,
                                   PartitionState&, const MasterLookup&) {
    if (nodeId >= map->size()) {
      throw std::out_of_range("masterFromMap: node not in map");
    }
    const uint32_t part = (*map)[nodeId];
    if (part >= prop.getNumPartitions()) {
      throw std::out_of_range("masterFromMap: partition out of range");
    }
    return part;
  };
  return rule;
}

EdgeRule edgeSource() {
  EdgeRule rule;
  rule.name = "Source";
  rule.fn = [](const GraphProperties&, uint64_t, uint64_t, uint32_t srcMaster,
               uint32_t, PartitionState&) { return srcMaster; };
  return rule;
}

EdgeRule edgeDest() {
  EdgeRule rule;
  rule.name = "Dest";
  rule.fn = [](const GraphProperties&, uint64_t, uint64_t, uint32_t,
               uint32_t dstMaster, PartitionState&) { return dstMaster; };
  return rule;
}

EdgeRule edgeHybrid(uint64_t degreeThreshold) {
  EdgeRule rule;
  rule.name = "Hybrid";
  rule.fn = [degreeThreshold](const GraphProperties& prop, uint64_t srcId,
                              uint64_t, uint32_t srcMaster, uint32_t dstMaster,
                              PartitionState&) {
    return prop.getNodeOutDegree(srcId) > degreeThreshold ? dstMaster
                                                          : srcMaster;
  };
  return rule;
}

EdgeRule edgeDbh(uint64_t seed) {
  EdgeRule rule;
  rule.name = "DBH";
  rule.fn = [seed](const GraphProperties& prop, uint64_t srcId,
                   uint64_t dstId, uint32_t, uint32_t, PartitionState&) {
    // Hash the endpoint with the smaller (out-)degree: its edges stay
    // together while the high-degree endpoint gets replicated. The real
    // DBH uses total degrees; prop exposes out-degrees in CSR reading
    // (reading CSC swaps the roles, as with the other policies).
    const uint64_t anchor =
        prop.getNodeOutDegree(srcId) <= prop.getNodeOutDegree(dstId) ? srcId
                                                                     : dstId;
    return static_cast<uint32_t>(support::hashU64(anchor ^ seed) %
                                 prop.getNumPartitions());
  };
  return rule;
}

namespace {

// Shared scoring loop of the replica-tracking vertex cuts (HDRF and
// PowerGraph Greedy). Returns the chosen partition and applies the state
// updates (edge load + replica masks for both endpoints).
uint32_t replicaAwarePlace(
    const GraphProperties& prop, uint64_t srcId, uint64_t dstId,
    PartitionState& estate,
    const std::function<double(uint32_t p, bool hasSrc, bool hasDst,
                               double loadTerm)>& scoreOf) {
  const uint32_t k = prop.getNumPartitions();
  const auto edgesCounter = estate.counterId("edges");
  const uint64_t srcMask = estate.nodeMask(srcId);
  const uint64_t dstMask = estate.nodeMask(dstId);
  int64_t minLoad = INT64_MAX;
  int64_t maxLoad = INT64_MIN;
  for (uint32_t p = 0; p < k; ++p) {
    const int64_t load = estate.read(edgesCounter, p);
    minLoad = std::min(minLoad, load);
    maxLoad = std::max(maxLoad, load);
  }
  uint32_t best = 0;
  double bestScore = -1e300;
  for (uint32_t p = 0; p < k; ++p) {
    const int64_t load = estate.read(edgesCounter, p);
    const double loadTerm =
        maxLoad == minLoad
            ? 0.0
            : static_cast<double>(maxLoad - load) /
                  static_cast<double>(maxLoad - minLoad);
    const double score = scoreOf(p, (srcMask >> p) & 1, (dstMask >> p) & 1,
                                 loadTerm);
    if (score > bestScore) {
      best = p;
      bestScore = score;
    }
  }
  estate.add(edgesCounter, best, 1);
  estate.orNodeMask(srcId, 1ull << best);
  estate.orNodeMask(dstId, 1ull << best);
  return best;
}

}  // namespace

EdgeRule edgeHdrf(const HdrfParams& params) {
  EdgeRule rule;
  rule.name = "HDRF";
  rule.usesState = true;
  rule.stateCounters = {"edges"};
  rule.usesNodeMasks = true;
  const double lambda = params.lambda;
  rule.fn = [lambda](const GraphProperties& prop, uint64_t srcId,
                     uint64_t dstId, uint32_t, uint32_t,
                     PartitionState& estate) {
    // HDRF scoring: C_rep(p) = g(src,p) + g(dst,p) with
    // g(v,p) = 1 + (1 - theta_v) if p holds a replica of v, else 0, where
    // theta_v = d(v) / (d(src) + d(dst)) — the *low*-degree endpoint
    // contributes the larger bonus, so high-degree vertices are the ones
    // replicated first. Plus lambda-weighted balance term.
    const double dSrc = static_cast<double>(prop.getNodeOutDegree(srcId));
    const double dDst = static_cast<double>(prop.getNodeOutDegree(dstId));
    const double total = std::max(1.0, dSrc + dDst);
    const double thetaSrc = dSrc / total;
    const double thetaDst = dDst / total;
    return replicaAwarePlace(
        prop, srcId, dstId, estate,
        [&](uint32_t, bool hasSrc, bool hasDst, double loadTerm) {
          double score = lambda * loadTerm;
          if (hasSrc) {
            score += 1.0 + (1.0 - thetaSrc);
          }
          if (hasDst) {
            score += 1.0 + (1.0 - thetaDst);
          }
          return score;
        });
  };
  return rule;
}

EdgeRule edgeGreedy() {
  EdgeRule rule;
  rule.name = "Greedy";
  rule.usesState = true;
  rule.stateCounters = {"edges"};
  rule.usesNodeMasks = true;
  rule.fn = [](const GraphProperties& prop, uint64_t srcId, uint64_t dstId,
               uint32_t, uint32_t, PartitionState& estate) {
    // PowerGraph's case analysis collapses into one scoring function:
    // both endpoints present (2.0) > one present (1.0) > none (0.0), with
    // the load term breaking ties toward the emptiest partition.
    return replicaAwarePlace(
        prop, srcId, dstId, estate,
        [](uint32_t, bool hasSrc, bool hasDst, double loadTerm) {
          return (hasSrc ? 1.0 : 0.0) + (hasDst ? 1.0 : 0.0) +
                 0.5 * loadTerm;
        });
  };
  return rule;
}

double replicaAffinityScore(const GraphProperties&, uint64_t srcId,
                            uint64_t dstId, PartitionState& estate) {
  const uint64_t srcMask = estate.nodeMask(srcId);
  const uint64_t dstMask = estate.nodeMask(dstId);
  if ((srcMask & dstMask) != 0) {
    return 2.0;  // some partition already holds both endpoints
  }
  if ((srcMask | dstMask) != 0) {
    return 1.0;  // one endpoint is placed somewhere
  }
  return 0.0;  // a fresh edge: defer it while better candidates exist
}

EdgeRule withWindowScore(EdgeRule rule) {
  rule.windowScore = replicaAffinityScore;
  return rule;
}

std::pair<uint32_t, uint32_t> cartesianGrid(uint32_t numPartitions) {
  if (numPartitions == 0) {
    throw std::invalid_argument("cartesianGrid: zero partitions");
  }
  uint32_t pCols = static_cast<uint32_t>(std::sqrt(numPartitions));
  while (numPartitions % pCols != 0) {
    --pCols;
  }
  return {numPartitions / pCols, pCols};
}

EdgeRule edgeCartesian() {
  EdgeRule rule;
  rule.name = "Cartesian";
  rule.fn = [](const GraphProperties& prop, uint64_t, uint64_t,
               uint32_t srcMaster, uint32_t dstMaster, PartitionState&) {
    // Paper Algorithm 2, CARTESIAN: rows blocked, columns cyclic.
    const auto [pRows, pCols] = cartesianGrid(prop.getNumPartitions());
    (void)pRows;
    const uint32_t blockedRowOffset = (srcMaster / pCols) * pCols;
    const uint32_t cyclicColumnOffset = dstMaster % pCols;
    return blockedRowOffset + cyclicColumnOffset;
  };
  return rule;
}

PartitionPolicy makePolicy(const std::string& name,
                           const FennelParams& params) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  PartitionPolicy policy;
  policy.name = upper;
  if (upper == "EEC") {
    policy.master = masterContiguousEB();
    policy.edge = edgeSource();
  } else if (upper == "HVC") {
    policy.master = masterContiguousEB();
    policy.edge = edgeHybrid(params.degreeThreshold);
  } else if (upper == "CVC") {
    policy.master = masterContiguousEB();
    policy.edge = edgeCartesian();
  } else if (upper == "FEC") {
    policy.master = masterFennelEB(params);
    policy.edge = edgeSource();
  } else if (upper == "GVC") {
    policy.master = masterFennelEB(params);
    policy.edge = edgeHybrid(params.degreeThreshold);
  } else if (upper == "SVC") {
    policy.master = masterFennelEB(params);
    policy.edge = edgeCartesian();
  } else if (upper == "LDG") {
    policy.master = masterLdg();
    policy.edge = edgeSource();
  } else if (upper == "DBH") {
    policy.master = masterHash();
    policy.edge = edgeDbh();
  } else if (upper == "HDRF") {
    policy.master = masterHash();
    policy.edge = edgeHdrf();
  } else if (upper == "GREEDY") {
    policy.master = masterHash();
    policy.edge = edgeGreedy();
  } else {
    throw std::invalid_argument("makePolicy: unknown policy " + name);
  }
  return policy;
}

const std::vector<std::string>& policyCatalog() {
  static const std::vector<std::string> catalog = {"EEC", "HVC", "CVC",
                                                   "FEC", "GVC", "SVC"};
  return catalog;
}

const std::vector<std::string>& extendedPolicyCatalog() {
  static const std::vector<std::string> catalog = {
      "EEC", "HVC", "CVC", "FEC", "GVC", "SVC",
      "LDG", "DBH", "HDRF", "GREEDY"};
  return catalog;
}

}  // namespace cusp::core
