// Degraded-mode completion after permanent host loss.
//
// When a permanent crash takes a host out for good, the resilient driver
// (core/partitioner.h, degradedMode on) evicts it from the membership and
// finishes on the survivors instead of burning its retry budget against a
// machine that will never answer. Two recovery paths exist:
//
//  Path A — checkpoint redistribution. If every host's phase-5 state is
//    still recoverable (survivors from their own checkpoints, the dead from
//    their buddy replicas — core/checkpoint.h), the survivors run one
//    agreement round, each loads ALL phase-5 partitions, and each computes
//    the same deterministic redistribution locally (replicated computation
//    instead of communication, the paper's IV-D5 idiom):
//    redistributePartitions below. No graph data is re-read or re-sent.
//
//  Path B — degraded re-partition. Otherwise (mid-pipeline loss, buddy
//    replica also lost, or replication off) the driver shrinks the host set
//    and re-runs the pipeline over the survivors: the dead host's CSR edge
//    window is re-read from the GraphFile and split edge-balanced across
//    the survivors (the driver records the adopted ranges and modeled
//    re-read bytes in the RecoveryReport), master assignment re-runs, and
//    the remaining phases complete on the shrunk cluster.
//
// classifyFault is the single failure handler the driver funnels every
// fault exception through; it replaces per-type catch blocks and feeds
// RecoveryReport::failures / failureKinds.
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "comm/fault.h"
#include "core/dist_graph.h"

namespace cusp::core {

// A structured view of the fault exceptions the resilient driver handles.
// Anything else (logic errors, bad inputs) is not a fault and must
// propagate unclassified.
struct ClassifiedFault {
  enum Kind : uint8_t {
    kHostFailure,          // injected crash (comm::HostFailure)
    kNetworkStalled,       // bounded receive expired (comm::NetworkStalled)
    kSendRetriesExhausted, // retry budget spent (comm::SendRetriesExhausted)
    kHostEvicted,          // traffic touched an evicted host (comm::HostEvicted)
    kMessageCorrupt,       // CRC frame check failed past the retransmission
                           // budget (comm::MessageCorrupt)
    kStorageFault,         // checkpoint/graph I/O failed
                           // (support::StorageError) — retryable: the
                           // escalation ladder resolves it on the next
                           // attempt from a replica or an earlier epoch
    kStragglerDeadline,    // a peer blew the hard straggler deadline
                           // (comm::StragglerDeadline) — the named laggard
                           // is evictable like a permanent crash
    kMemoryPressure,       // a budgeted reservation was refused
                           // (support::MemoryPressure) — the driver walks
                           // the degradation ladder (stream windows → spill
                           // → smaller chunks) instead of retrying blindly
    kMinorityPartition,    // a host fenced itself on the losing side of a
                           // network partition (comm::MinorityPartition) —
                           // fail-fast, never retried: the driver either
                           // evicts the fenced side under the quorum rule
                           // (a partition event is in force) or propagates
  };

  Kind kind = kHostFailure;
  std::string what;
  // Faulty host where the exception names one (HostFailure::host,
  // HostEvicted::host, StragglerDeadline::laggard); comm::kAnyHost
  // otherwise.
  comm::HostId host = comm::kAnyHost;
  uint32_t phase = 0;  // HostFailure only; 0 elsewhere

  const char* kindName() const;
};

// Classifies the in-flight exception `ep`; nullopt if it is not one of the
// structured fault types (caller rethrows).
std::optional<ClassifiedFault> classifyFault(std::exception_ptr ep);

// Deterministically reassigns the evicted hosts' vertices and edges to the
// survivors, given the complete set of phase-5 partitions `parts`
// (parts[r] is rank r's DistGraph; all must share numHosts == parts.size()
// and the same orientation). Rules:
//  * a vertex mastered by an evicted rank moves to
//    survivors[gid % numSurvivors] (sorted survivor order) — the same
//    modulo family as the paper's pure master rules, so the reassignment
//    is computable by every host without communication;
//  * survivors keep the edges they own; an evicted rank's edges move to
//    the new master of their stored row vertex (the source, or the
//    destination for transposed partitions);
//  * every survivor partition is rebuilt from scratch — masters then
//    mirrors, each sorted by global id, rows canonically sorted — so the
//    output is a valid partition set in its own right.
//
// compact=true renumbers hosts densely: output[i] is survivor i's
// partition with hostId == i and numHosts == numSurvivors (what the driver
// returns as the degraded PartitionResult). compact=false keeps the
// original rank space: output has parts.size() slots, evicted slots hold
// empty partitions, and master/mirror metadata stays indexed by original
// rank (what an analytics engine running on the original Network with the
// dead hosts evicted consumes).
std::vector<DistGraph> redistributePartitions(
    const std::vector<DistGraph>& parts,
    const std::vector<uint32_t>& evictedRanks, bool compact);

}  // namespace cusp::core
