#include "core/degraded.h"

#include <algorithm>
#include <stdexcept>

#include "support/bitset.h"
#include "support/memory.h"
#include "support/storage.h"

namespace cusp::core {

const char* ClassifiedFault::kindName() const {
  switch (kind) {
    case kHostFailure: return "HostFailure";
    case kNetworkStalled: return "NetworkStalled";
    case kSendRetriesExhausted: return "SendRetriesExhausted";
    case kHostEvicted: return "HostEvicted";
    case kMessageCorrupt: return "MessageCorrupt";
    case kStorageFault: return "StorageFault";
    case kStragglerDeadline: return "StragglerDeadline";
    case kMemoryPressure: return "MemoryPressure";
    case kMinorityPartition: return "MinorityPartition";
  }
  return "unknown";
}

std::optional<ClassifiedFault> classifyFault(std::exception_ptr ep) {
  try {
    std::rethrow_exception(ep);
  } catch (const comm::HostFailure& e) {
    return ClassifiedFault{ClassifiedFault::kHostFailure, e.what(), e.host,
                           e.phase};
  } catch (const comm::NetworkStalled& e) {
    return ClassifiedFault{ClassifiedFault::kNetworkStalled, e.what(),
                           comm::kAnyHost, 0};
  } catch (const comm::SendRetriesExhausted& e) {
    return ClassifiedFault{ClassifiedFault::kSendRetriesExhausted, e.what(),
                           comm::kAnyHost, 0};
  } catch (const comm::HostEvicted& e) {
    return ClassifiedFault{ClassifiedFault::kHostEvicted, e.what(), e.host,
                           0};
  } catch (const comm::MessageCorrupt& e) {
    return ClassifiedFault{ClassifiedFault::kMessageCorrupt, e.what(),
                           comm::kAnyHost, 0};
  } catch (const comm::StragglerDeadline& e) {
    return ClassifiedFault{ClassifiedFault::kStragglerDeadline, e.what(),
                           e.laggard, 0};
  } catch (const comm::MinorityPartition& e) {
    return ClassifiedFault{ClassifiedFault::kMinorityPartition, e.what(),
                           e.host, 0};
  } catch (const support::StorageError& e) {
    return ClassifiedFault{ClassifiedFault::kStorageFault, e.what(),
                           comm::kAnyHost, 0};
  } catch (const support::MemoryPressure& e) {
    return ClassifiedFault{ClassifiedFault::kMemoryPressure, e.what(),
                           comm::kAnyHost, 0};
  } catch (...) {
    return std::nullopt;
  }
}

std::vector<DistGraph> redistributePartitions(
    const std::vector<DistGraph>& parts,
    const std::vector<uint32_t>& evictedRanks, bool compact) {
  const uint32_t k = static_cast<uint32_t>(parts.size());
  if (k == 0) {
    throw std::invalid_argument("redistributePartitions: no partitions");
  }
  std::vector<bool> evicted(k, false);
  for (uint32_t r : evictedRanks) {
    if (r >= k) {
      throw std::invalid_argument(
          "redistributePartitions: evicted rank out of range");
    }
    evicted[r] = true;
  }
  std::vector<uint32_t> survivors;
  for (uint32_t r = 0; r < k; ++r) {
    if (!evicted[r]) {
      survivors.push_back(r);
    }
  }
  const uint32_t numSurvivors = static_cast<uint32_t>(survivors.size());
  if (numSurvivors == 0) {
    throw std::invalid_argument("redistributePartitions: every rank evicted");
  }
  for (uint32_t r = 0; r < k; ++r) {
    if (parts[r].numHosts != k || parts[r].hostId != r) {
      throw std::invalid_argument(
          "redistributePartitions: parts is not a complete rank-indexed "
          "partition family");
    }
  }
  const uint64_t numGlobalNodes = parts[0].numGlobalNodes;
  const uint64_t numGlobalEdges = parts[0].numGlobalEdges;
  const bool transposed = parts[0].isTransposed;
  bool withData = false;
  for (const DistGraph& p : parts) {
    withData = withData || p.graph.hasEdgeData();
  }

  // Output slot of each surviving original rank: dense renumbering when
  // compact, identity otherwise. masterHostOfLocal and the mirror lists are
  // indexed/valued in slot space, so both modes share the code below.
  std::vector<uint32_t> slotOf(k, UINT32_MAX);
  for (uint32_t i = 0; i < numSurvivors; ++i) {
    slotOf[survivors[i]] = compact ? i : survivors[i];
  }
  const uint32_t outHosts = compact ? numSurvivors : k;

  // New master of every vertex (original rank space): survivors keep their
  // masters; an evicted rank's vertices go to survivors[gid mod S] — a pure
  // modulo rule, so every host computes the identical reassignment without
  // communication (paper IV-D5).
  std::vector<uint32_t> newMasterOf(numGlobalNodes, UINT32_MAX);
  for (const DistGraph& p : parts) {
    for (uint64_t lid = 0; lid < p.numMasters; ++lid) {
      newMasterOf[p.localToGlobal[lid]] = p.hostId;
    }
  }
  for (uint64_t gid = 0; gid < numGlobalNodes; ++gid) {
    if (newMasterOf[gid] == UINT32_MAX) {
      throw std::logic_error(
          "redistributePartitions: vertex without a master proxy");
    }
    if (evicted[newMasterOf[gid]]) {
      newMasterOf[gid] = survivors[gid % numSurvivors];
    }
  }

  // Edges by new owner, in storage orientation (stored row vertex first —
  // the source, or the destination for transposed partitions). Survivors
  // keep their own edges; an evicted rank's edges follow the new master of
  // their row vertex.
  struct GEdge {
    uint64_t row;
    uint64_t col;
    uint32_t data;
  };
  std::vector<std::vector<GEdge>> edgesOf(k);
  for (const DistGraph& p : parts) {
    const graph::CsrGraph& g = p.graph;
    for (uint64_t lid = 0; lid < p.numLocalNodes(); ++lid) {
      const uint64_t rowGid = p.localToGlobal[lid];
      const uint32_t target =
          evicted[p.hostId] ? newMasterOf[rowGid] : p.hostId;
      for (uint64_t e = g.edgeBegin(lid); e < g.edgeEnd(lid); ++e) {
        edgesOf[target].push_back(
            GEdge{rowGid, p.localToGlobal[g.edgeDst(e)], g.edgeData(e)});
      }
    }
  }

  std::vector<std::vector<uint64_t>> mastersOf(k);
  for (uint64_t gid = 0; gid < numGlobalNodes; ++gid) {
    mastersOf[newMasterOf[gid]].push_back(gid);  // ascending by construction
  }

  std::vector<DistGraph> out(outHosts);
  for (uint32_t slot = 0; slot < outHosts; ++slot) {
    out[slot].hostId = slot;
    out[slot].numHosts = outHosts;
    out[slot].numGlobalNodes = numGlobalNodes;
    out[slot].numGlobalEdges = numGlobalEdges;
    out[slot].isTransposed = transposed;
    out[slot].mirrorsOnHost.assign(outHosts, {});
    out[slot].myMirrorsByOwner.assign(outHosts, {});
  }

  for (uint32_t s : survivors) {
    DistGraph& dst = out[slotOf[s]];
    support::DynamicBitset incident(numGlobalNodes);
    for (const GEdge& e : edgesOf[s]) {
      incident.set(e.row);
      incident.set(e.col);
    }
    std::vector<uint64_t> incidentGids;
    incident.collectSetBits(incidentGids);

    dst.numMasters = mastersOf[s].size();
    dst.localToGlobal = mastersOf[s];
    for (uint64_t gid : incidentGids) {
      if (newMasterOf[gid] != s) {
        dst.localToGlobal.push_back(gid);  // mirrors, ascending
      }
    }
    dst.globalToLocal.reserve(dst.localToGlobal.size());
    for (uint64_t lid = 0; lid < dst.localToGlobal.size(); ++lid) {
      dst.globalToLocal.emplace(dst.localToGlobal[lid], lid);
    }
    dst.masterHostOfLocal.resize(dst.localToGlobal.size());
    for (uint64_t lid = 0; lid < dst.localToGlobal.size(); ++lid) {
      dst.masterHostOfLocal[lid] = slotOf[newMasterOf[dst.localToGlobal[lid]]];
    }

    std::vector<graph::Edge> local;
    local.reserve(edgesOf[s].size());
    for (const GEdge& e : edgesOf[s]) {
      local.push_back(graph::Edge{dst.globalToLocal.at(e.row),
                                  dst.globalToLocal.at(e.col), e.data});
    }
    std::sort(local.begin(), local.end());  // canonical sorted rows
    dst.graph =
        graph::CsrGraph::fromEdges(dst.localToGlobal.size(), local, withData);
  }

  // Mirror pairing: iterating each survivor's mirrors ascending fills both
  // sides of every (master, mirror) list pair in matching global-id order.
  for (uint32_t b : survivors) {
    DistGraph& pb = out[slotOf[b]];
    for (uint64_t lid = pb.numMasters; lid < pb.numLocalNodes(); ++lid) {
      const uint64_t gid = pb.localToGlobal[lid];
      const uint32_t a = newMasterOf[gid];
      pb.myMirrorsByOwner[slotOf[a]].push_back(lid);
      out[slotOf[a]].mirrorsOnHost[slotOf[b]].push_back(
          out[slotOf[a]].globalToLocal.at(gid));
    }
  }
  return out;
}

}  // namespace cusp::core
