// Per-phase partitioning checkpoints.
//
// Fault-tolerant runs persist each host's state after every completed
// pipeline phase as `<dir>/h<host>.p<phase>.ckpt`. A checkpoint is a small
// header (magic, host, numHosts, phase) followed by an opaque payload the
// partitioner serializes with the support/serialize.h machinery, and a
// CRC32 footer (support/crc32.h). Writes are atomic (tmp file + rename) so
// a crash mid-checkpoint can never leave a truncated file that passes
// validation; any file that fails the magic/identity/CRC checks is treated
// as absent.
//
// Hosts keep every phase's file (not just the latest): after a crash the
// recovery driver agrees on min-over-hosts of the latest valid phase, so
// any host may be asked to reload an older checkpoint than its newest.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/serialize.h"

namespace cusp::core {

inline constexpr uint64_t kCheckpointMagic = 0x0000000031504B43ULL;  // "CKP1"

// `<dir>/h<host>.p<phase>.ckpt`
std::string checkpointPath(const std::string& dir, uint32_t host,
                           uint32_t phase);

// Atomically writes `payload` as host `host`'s checkpoint for `phase`.
// Creates `dir` if missing. Throws std::runtime_error on I/O failure.
void saveCheckpoint(const std::string& dir, uint32_t host, uint32_t numHosts,
                    uint32_t phase, const support::SendBuffer& payload);

// Loads and validates a checkpoint; nullopt if the file is missing, fails
// CRC, or does not match (host, numHosts, phase). Returns the bare payload.
std::optional<std::vector<uint8_t>> loadCheckpoint(const std::string& dir,
                                                   uint32_t host,
                                                   uint32_t numHosts,
                                                   uint32_t phase);

// Highest phase in [1, maxPhase] with a valid checkpoint for `host`;
// 0 if none (restart from scratch).
uint32_t latestValidCheckpoint(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase);

// Deletes every checkpoint file of `host` up to `maxPhase` (best effort).
void removeCheckpoints(const std::string& dir, uint32_t host,
                       uint32_t maxPhase);

}  // namespace cusp::core
