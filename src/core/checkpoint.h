// Per-phase partitioning checkpoints.
//
// Fault-tolerant runs persist each host's state after every completed
// pipeline phase as `<dir>/h<host>.p<phase>.ckpt`. A checkpoint is a small
// header (magic, host, numHosts, phase) followed by an opaque payload the
// partitioner serializes with the support/serialize.h machinery, and a
// CRC32 footer (support/crc32.h). Writes go through the storage seam's
// durable commit protocol (support/storage.h: tmp + fflush + fsync +
// rename + directory fsync) so a crash mid-checkpoint can never leave a
// truncated file that passes validation, and a crash right after the
// rename cannot lose the committed bytes. Any file that fails the
// magic/identity/CRC checks is treated as absent; a file failing CRC is
// additionally QUARANTINED (renamed to `<path>.quarantined`) so it stops
// shadowing the escalation ladder and stays available for post-mortems.
// An injected or real read failure is also reported as absent (counted in
// obs), pushing the caller down the same ladder: local file -> buddy
// replica -> earlier epoch -> degraded re-partition.
//
// Hosts keep every phase's file (not just the latest): after a crash the
// recovery driver agrees on min-over-hosts of the latest valid phase, so
// any host may be asked to reload an older checkpoint than its newest.
//
// Buddy replication (degraded mode, opt-in): alongside its own file each
// host mirrors the payload to its RING SUCCESSOR's store as
// `h<buddy>.p<phase>.buddy<owner>.ckpt` with buddy = (owner+1) mod k. When
// a host is permanently lost — in this simulation, its store (own files
// plus the replicas it held) is deleted — survivors can still reload the
// dead host's phase state from the replica, unless the buddy itself died
// first, in which case the replica is gone too and the degraded driver
// falls back to a full re-partition. latestValidCheckpoint and the loaders
// consult the replica whenever the primary file is missing or corrupt.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "support/serialize.h"

namespace cusp::core {

inline constexpr uint64_t kCheckpointMagic = 0x0000000031504B43ULL;  // "CKP1"

// `<dir>/h<host>.p<phase>.ckpt`
std::string checkpointPath(const std::string& dir, uint32_t host,
                           uint32_t phase);

// Durably and atomically writes `payload` as host `host`'s checkpoint for
// `phase`. Creates `dir` if missing. Throws support::StorageError (a
// std::runtime_error) on I/O failure, real or injected; callers dispatch
// on its kind — kNoSpace means the condition is persistent and further
// checkpointing should be disabled, everything else means skip this one
// checkpoint and continue.
void saveCheckpoint(const std::string& dir, uint32_t host, uint32_t numHosts,
                    uint32_t phase, const support::SendBuffer& payload);

// Loads and validates a checkpoint; nullopt if the file is missing, fails
// CRC, or does not match (host, numHosts, phase). A checkpoint written for
// a different cluster size is rejected with a warn log, not silently — it
// is the signature of a reused checkpoint directory. Returns the bare
// payload.
std::optional<std::vector<uint8_t>> loadCheckpoint(const std::string& dir,
                                                   uint32_t host,
                                                   uint32_t numHosts,
                                                   uint32_t phase);

// --- buddy replication ---

// `<dir>/h<buddy>.p<phase>.buddy<owner>.ckpt` with buddy = (owner+1) mod
// numHosts: the replica of `owner`'s checkpoint held by its ring successor.
std::string checkpointReplicaPath(const std::string& dir, uint32_t owner,
                                  uint32_t numHosts, uint32_t phase);

// Atomically writes the replica of `owner`'s phase checkpoint into its ring
// successor's store (same header/CRC format as the primary).
void saveCheckpointReplica(const std::string& dir, uint32_t owner,
                           uint32_t numHosts, uint32_t phase,
                           const support::SendBuffer& payload);

// Loads `owner`'s checkpoint from the buddy replica; same validation as
// loadCheckpoint (the header identity is the OWNER's).
std::optional<std::vector<uint8_t>> loadCheckpointReplica(
    const std::string& dir, uint32_t owner, uint32_t numHosts,
    uint32_t phase);

// loadCheckpoint falling back to the buddy replica; what restore paths use
// so a host whose own file was lost can still resume.
std::optional<std::vector<uint8_t>> loadCheckpointOrReplica(
    const std::string& dir, uint32_t host, uint32_t numHosts, uint32_t phase);

// Highest phase in [1, maxPhase] with a valid checkpoint for `host`,
// consulting the buddy replica when the primary is missing or corrupt;
// 0 if none (restart from scratch).
uint32_t latestValidCheckpoint(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase);

// Deletes every checkpoint file of `host` up to `maxPhase` (best effort).
void removeCheckpoints(const std::string& dir, uint32_t host,
                       uint32_t maxPhase);

// Simulates the loss of `host`'s local checkpoint store on eviction:
// removes the host's own files AND every replica it held for other hosts
// (so the predecessor's state dies with it — the scenario buddy
// replication cannot cover when both die).
void removeHostCheckpointStore(const std::string& dir, uint32_t host,
                               uint32_t numHosts, uint32_t maxPhase);

// Removes orphaned `*.ckpt.tmp` files a crash mid-rename may have left in
// `dir` (the atomic-write protocol never lets them become visible as valid
// checkpoints, but they would otherwise accumulate), plus stale
// `*.quarantined` debris from the corrupt-checkpoint quarantine. Tmp files
// are always swept; quarantined files are kept for
// `quarantineAgeSeconds` after their last modification so in-flight
// forensics (a corrupt image quarantined moments ago, possibly mid-run)
// aren't deleted from under whoever is inspecting them. Returns the number
// of files removed. The resilient driver runs this on start.
uint32_t garbageCollectCheckpointTmp(const std::string& dir,
                                     double quarantineAgeSeconds = 24 * 3600);

// mkdir -p for a checkpoint/spill store directory.
void ensureStoreDirs(const std::string& dir);

}  // namespace cusp::core
