// cusp::obs trace spans — a per-host timeline of what ran when.
//
// Each logical host (and the resilient driver, on its own lane) records
// complete spans — phase 3 on host 2, superstep 7 on host 0, recovery
// attempt 1 on the driver — into a shared TraceBuffer. The buffer keeps one
// steady-clock origin so all lanes share a timebase, and exports the
// chrome://tracing trace-event JSON format ("ph":"X" complete events plus
// thread_name metadata), loadable directly in chrome://tracing or Perfetto.
//
// Spans are coarse (phases, supersteps, attempts — not per-message), so a
// mutex-guarded vector is plenty; the hot message path never touches this.
// ScopedSpan is null-safe: constructed with a null buffer it does nothing,
// which is how instrumented code stays zero-cost with no sink attached.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cusp::obs {

// Lane ids are logical host ids; the resilient/partition driver gets its own
// lane so attempt-level spans do not collide with host work.
inline constexpr uint32_t kDriverLane = 0xFFFFFFFFu;

struct TraceEvent {
  std::string name;
  uint32_t lane = 0;        // logical host id, or kDriverLane
  uint64_t startMicros = 0; // since the buffer's origin
  uint64_t durMicros = 0;
};

class TraceBuffer {
 public:
  TraceBuffer() : origin_(std::chrono::steady_clock::now()) {}
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  // Microseconds since this buffer's origin (the shared timebase).
  uint64_t nowMicros() const;

  void record(uint32_t lane, std::string name, uint64_t startMicros,
              uint64_t durMicros);

  // Events in recording order (spans close innermost-first per lane).
  std::vector<TraceEvent> snapshot() const;

  // The chrome://tracing document: {"traceEvents":[...]} with one
  // thread_name metadata event per lane plus a "ph":"X" complete event per
  // span. Timestamps are the buffer-relative microseconds.
  std::string toChromeTraceJson() const;

 private:
  std::chrono::steady_clock::time_point origin_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

// RAII span: opens at construction, records into `buffer` at destruction.
// A null buffer makes every operation a no-op.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(TraceBuffer* buffer, uint32_t lane, std::string name)
      : buffer_(buffer), lane_(lane), name_(std::move(name)),
        startMicros_(buffer ? buffer->nowMicros() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ScopedSpan(ScopedSpan&& other) noexcept { *this = std::move(other); }
  ScopedSpan& operator=(ScopedSpan&& other) noexcept {
    close();
    buffer_ = other.buffer_;
    lane_ = other.lane_;
    name_ = std::move(other.name_);
    startMicros_ = other.startMicros_;
    other.buffer_ = nullptr;
    return *this;
  }
  ~ScopedSpan() { close(); }

  // Ends the span early (idempotent).
  void close();

 private:
  TraceBuffer* buffer_ = nullptr;
  uint32_t lane_ = 0;
  std::string name_;
  uint64_t startMicros_ = 0;
};

}  // namespace cusp::obs
