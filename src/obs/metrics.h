// cusp::obs::MetricsRegistry — the process-wide metrics model.
//
// A registry holds three metric kinds, each identified by a name plus a set
// of named labels (host/phase/tag/...):
//
//   Counter    monotone uint64 accumulator (messages, bytes, retries).
//   Gauge      last-write-wins double (frontier size, alive hosts).
//   Histogram  fixed-bucket distribution with exact count and sum.
//
// Cell resolution (counter()/gauge()/histogram()) interns the (name, labels)
// key under a mutex and returns a reference that stays valid for the life of
// the registry; the returned cells are plain atomics, so the hot path —
// Counter::add on every cross-host message — is a single relaxed
// fetch_add with no lock. Instrumented components resolve their cells once
// (at attach/construction time) and increment thereafter, which is what
// keeps the overhead negligible next to the work being measured.
//
// snapshot() and toJson() produce a point-in-time view; the JSON document
// (schema "cusp.metrics.v1") is the machine-readable export the benches and
// tools dump behind --metrics-out. Counters only ever grow, so successive
// snapshots of the same registry are monotone per key — a property the
// golden-schema tests pin.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cusp::obs {

// Label sets are small (1-2 entries); a sorted vector of pairs keeps them
// cheap to intern and deterministic to export.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  // `bounds` are inclusive upper bucket bounds, strictly increasing; an
  // implicit +inf bucket catches the rest.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::vector<double>& bounds() const { return bounds_; }
  // One entry per bound plus the +inf bucket (non-cumulative counts).
  std::vector<uint64_t> bucketCounts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sumBits_{0};  // double accumulated via CAS
};

// Default histogram bucketing: powers of four from 1 upward — wide enough
// for byte sizes and frontier counts alike without per-metric tuning.
std::vector<double> defaultHistogramBounds();

struct CounterSample {
  std::string name;
  Labels labels;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  Labels labels;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  Labels labels;
  std::vector<double> bounds;
  std::vector<uint64_t> bucketCounts;  // bounds.size() + 1 (+inf last)
  uint64_t count = 0;
  double sum = 0.0;
};

struct MetricsSnapshot {
  std::vector<CounterSample> counters;    // sorted by (name, labels)
  std::vector<GaugeSample> gauges;        // sorted by (name, labels)
  std::vector<HistogramSample> histograms;

  // Counter value by (name, labels); 0 when absent. Convenience for tests.
  uint64_t counterValue(std::string_view name,
                        const Labels& labels = {}) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Interns (name, labels) on first use; the reference stays valid for the
  // registry's lifetime. Labels are canonicalized (sorted by key), so label
  // order at the call site does not split cells.
  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  // `bounds` applies on first registration of the key; later lookups with
  // different bounds return the existing cell unchanged.
  Histogram& histogram(std::string_view name, Labels labels = {},
                       std::vector<double> bounds = defaultHistogramBounds());

  MetricsSnapshot snapshot() const;

  // The metrics JSON document (schema "cusp.metrics.v1"): one object with
  // "counters" / "gauges" / "histograms" arrays, entries sorted by
  // (name, labels) so identical registries serialize identically.
  std::string toJson() const;

 private:
  struct Key {
    std::string name;
    Labels labels;
    bool operator<(const Key& other) const {
      if (name != other.name) {
        return name < other.name;
      }
      return labels < other.labels;
    }
  };

  static Key makeKey(std::string_view name, Labels&& labels);

  mutable std::mutex mutex_;
  std::map<Key, std::unique_ptr<Counter>> counters_;
  std::map<Key, std::unique_ptr<Gauge>> gauges_;
  std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace cusp::obs
