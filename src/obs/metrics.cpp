#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace cusp::obs {

namespace {

// Formats a double the way the exporters want it: integers without a
// fractional part (counter-like values stay grep-able), everything else with
// enough digits to round-trip through the parser.
std::string formatNumber(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void appendLabels(std::string& out, const Labels& labels) {
  out += "\"labels\":{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += json::quote(key);
    out += ':';
    out += json::quote(value);
  }
  out += '}';
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t oldBits = sumBits_.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = std::bit_cast<double>(oldBits) + x;
    if (sumBits_.compare_exchange_weak(oldBits, std::bit_cast<uint64_t>(updated),
                                       std::memory_order_relaxed)) {
      return;
    }
  }
}

double Histogram::sum() const {
  return std::bit_cast<double>(sumBits_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> defaultHistogramBounds() {
  std::vector<double> bounds;
  double b = 1.0;
  for (int i = 0; i < 16; ++i) {  // 1, 4, 16, ... ~1.07e9
    bounds.push_back(b);
    b *= 4.0;
  }
  return bounds;
}

uint64_t MetricsSnapshot::counterValue(std::string_view name,
                                       const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& sample : counters) {
    if (sample.name == name && sample.labels == sorted) {
      return sample.value;
    }
  }
  return 0;
}

MetricsRegistry::Key MetricsRegistry::makeKey(std::string_view name,
                                              Labels&& labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = counters_[makeKey(name, std::move(labels))];
  if (!cell) {
    cell = std::make_unique<Counter>();
  }
  return *cell;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = gauges_[makeKey(name, std::move(labels))];
  if (!cell) {
    cell = std::make_unique<Gauge>();
  }
  return *cell;
}

Histogram& MetricsRegistry::histogram(std::string_view name, Labels labels,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = histograms_[makeKey(name, std::move(labels))];
  if (!cell) {
    cell = std::make_unique<Histogram>(std::move(bounds));
  }
  return *cell;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [key, cell] : counters_) {
    snap.counters.push_back({key.name, key.labels, cell->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [key, cell] : gauges_) {
    snap.gauges.push_back({key.name, key.labels, cell->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [key, cell] : histograms_) {
    snap.histograms.push_back({key.name, key.labels, cell->bounds(),
                               cell->bucketCounts(), cell->count(),
                               cell->sum()});
  }
  return snap;
}

std::string MetricsRegistry::toJson() const {
  const MetricsSnapshot snap = snapshot();
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"cusp.metrics.v1\",\"counters\":[";
  bool first = true;
  for (const auto& sample : snap.counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    out += json::quote(sample.name);
    out += ',';
    appendLabels(out, sample.labels);
    out += ",\"value\":";
    out += formatNumber(static_cast<double>(sample.value));
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& sample : snap.gauges) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    out += json::quote(sample.name);
    out += ',';
    appendLabels(out, sample.labels);
    out += ",\"value\":";
    out += formatNumber(sample.value);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& sample : snap.histograms) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":";
    out += json::quote(sample.name);
    out += ',';
    appendLabels(out, sample.labels);
    out += ",\"count\":";
    out += formatNumber(static_cast<double>(sample.count));
    out += ",\"sum\":";
    out += formatNumber(sample.sum);
    out += ",\"buckets\":[";
    for (size_t i = 0; i < sample.bucketCounts.size(); ++i) {
      if (i > 0) {
        out += ',';
      }
      out += "{\"le\":";
      if (i < sample.bounds.size()) {
        out += formatNumber(sample.bounds[i]);
      } else {
        out += "\"inf\"";
      }
      out += ",\"count\":";
      out += formatNumber(static_cast<double>(sample.bucketCounts[i]));
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace cusp::obs
