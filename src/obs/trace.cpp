#include "obs/trace.h"

#include <algorithm>
#include <set>

#include "obs/json.h"

namespace cusp::obs {

uint64_t TraceBuffer::nowMicros() const {
  const auto elapsed = std::chrono::steady_clock::now() - origin_;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
}

void TraceBuffer::record(uint32_t lane, std::string name, uint64_t startMicros,
                         uint64_t durMicros) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back({std::move(name), lane, startMicros, durMicros});
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::string TraceBuffer::toChromeTraceJson() const {
  const std::vector<TraceEvent> events = snapshot();

  std::set<uint32_t> lanes;
  for (const auto& e : events) {
    lanes.insert(e.lane);
  }

  std::string out;
  out.reserve(256 + events.size() * 96);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const uint32_t lane : lanes) {
    if (!first) {
      out += ',';
    }
    first = false;
    const std::string laneName =
        lane == kDriverLane ? "driver" : "host " + std::to_string(lane);
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(lane) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":" +
           json::quote(laneName) + "}}";
  }
  for (const auto& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.lane) +
           ",\"ts\":" + std::to_string(e.startMicros) +
           ",\"dur\":" + std::to_string(e.durMicros) +
           ",\"cat\":\"cusp\",\"name\":" + json::quote(e.name) + '}';
  }
  out += "]}";
  return out;
}

void ScopedSpan::close() {
  if (buffer_ == nullptr) {
    return;
  }
  const uint64_t end = buffer_->nowMicros();
  buffer_->record(lane_, std::move(name_), startMicros_,
                  end > startMicros_ ? end - startMicros_ : 0);
  buffer_ = nullptr;
}

}  // namespace cusp::obs
