#include "obs/obs.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>

namespace cusp::obs {

namespace {

// Function-local statics (the logging.h idiom) so the sink is usable from
// static initializers in any translation unit.
std::mutex& sinkMutex() {
  static std::mutex m;
  return m;
}

Sink& globalSink() {
  static Sink s;
  return s;
}

std::atomic<bool>& attachedFlag() {
  static std::atomic<bool> flag{false};
  return flag;
}

}  // namespace

Sink makeSink() {
  return Sink{std::make_shared<MetricsRegistry>(),
              std::make_shared<TraceBuffer>()};
}

bool attached() { return attachedFlag().load(std::memory_order_acquire); }

Sink sink() {
  if (!attached()) {
    return {};
  }
  std::lock_guard<std::mutex> lock(sinkMutex());
  return globalSink();
}

void attach(Sink s) {
  std::lock_guard<std::mutex> lock(sinkMutex());
  const bool nowAttached = static_cast<bool>(s);
  globalSink() = std::move(s);
  attachedFlag().store(nowAttached, std::memory_order_release);
}

void detach() { attach({}); }

ScopedObservability::ScopedObservability(Sink s)
    : sink_(std::move(s)), previous_(obs::sink()) {
  attach(sink_);
}

ScopedObservability::~ScopedObservability() { attach(previous_); }

std::string traceExportPath(const std::string& metricsPath) {
  static constexpr std::string_view kSuffix = ".json";
  if (metricsPath.size() > kSuffix.size() &&
      metricsPath.compare(metricsPath.size() - kSuffix.size(), kSuffix.size(),
                          kSuffix) == 0) {
    return metricsPath.substr(0, metricsPath.size() - kSuffix.size()) +
           ".trace.json";
  }
  return metricsPath + ".trace.json";
}

bool writeExports(const Sink& s, const std::string& metricsPath,
                  std::string* error) {
  if (!s) {
    if (error != nullptr) {
      *error = "no sink attached";
    }
    return false;
  }
  const auto writeFile = [&](const std::string& path,
                             const std::string& body) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << body << '\n';
    if (!out.good()) {
      if (error != nullptr) {
        *error = "failed to write " + path;
      }
      return false;
    }
    return true;
  };
  return writeFile(metricsPath, s.metrics->toJson()) &&
         writeFile(traceExportPath(metricsPath), s.trace->toChromeTraceJson());
}

MetricsCli::MetricsCli(int& argc, char** argv) {
  static constexpr std::string_view kFlag = "--metrics-out";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0 && arg.size() > kFlag.size() &&
        arg[kFlag.size()] == '=') {
      path_ = std::string(arg.substr(kFlag.size() + 1));
      continue;
    }
    if (arg == kFlag && i + 1 < argc) {
      path_ = argv[++i];
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (!path_.empty()) {
    scope_.emplace();
  }
}

MetricsCli::~MetricsCli() {
  if (!scope_.has_value()) {
    return;
  }
  std::string error;
  if (writeExports(scope_->sink(), path_, &error)) {
    std::fprintf(stderr, "metrics written to %s (trace: %s)\n", path_.c_str(),
                 traceExportPath(path_).c_str());
  } else {
    std::fprintf(stderr, "metrics export failed: %s\n", error.c_str());
  }
}

}  // namespace cusp::obs
