#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace cusp::obs::json {

const Value* Value::find(std::string_view key) const {
  if (type != Type::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : object) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

std::string quote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out.push_back('"');
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value document() {
    Value v = value();
    skipSpace();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value value() {
    skipSpace();
    switch (peek()) {
      case '{':
        return objectValue();
      case '[':
        return arrayValue();
      case '"': {
        Value v;
        v.type = Value::Type::kString;
        v.str = stringLiteral();
        return v;
      }
      default:
        break;
    }
    Value v;
    if (consumeLiteral("true")) {
      v.type = Value::Type::kBool;
      v.boolean = true;
      return v;
    }
    if (consumeLiteral("false")) {
      v.type = Value::Type::kBool;
      v.boolean = false;
      return v;
    }
    if (consumeLiteral("null")) {
      return v;  // kNull
    }
    return numberValue();
  }

  Value objectValue() {
    Value v;
    v.type = Value::Type::kObject;
    expect('{');
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skipSpace();
      std::string key = stringLiteral();
      skipSpace();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value arrayValue() {
    Value v;
    v.type = Value::Type::kArray;
    expect('[');
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skipSpace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string stringLiteral() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = peek();
      ++pos_;
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const unsigned long code = std::strtoul(hex.c_str(), nullptr, 16);
          // The exporters only escape control bytes; anything wider is
          // stored as its low byte (good enough for schema validation).
          out.push_back(static_cast<char>(code & 0xFF));
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value numberValue() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number '" + token + "'");
    }
    Value v;
    v.type = Value::Type::kNumber;
    v.number = parsed;
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).document(); }

}  // namespace cusp::obs::json
