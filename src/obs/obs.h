// cusp::obs — process-wide attachable observability sink.
//
// Instrumentation in comm/, core/, and analytics/ is compiled in always but
// records nothing until a sink is attached. The sink is process-global and
// consulted at natural construction points (Network ctor, PartitionJob
// start, SyncContext ctor): components resolve their registry cells and
// trace buffer once, hold shared_ptrs so a concurrent detach can never
// invalidate them, and from then on pay one null-check per event when
// detached and a relaxed atomic add when attached.
//
//   obs::ScopedObservability scope;          // attach a fresh sink
//   ... partition / run analytics ...
//   obs::writeExports(scope.sink(), "run.json");   // + run.trace.json
//
// Program mains get the same behavior from MetricsCli, which consumes a
// --metrics-out=PATH flag and dumps both exports at scope exit.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cusp::obs {

struct Sink {
  std::shared_ptr<MetricsRegistry> metrics;
  std::shared_ptr<TraceBuffer> trace;

  explicit operator bool() const { return metrics != nullptr; }
};

// Creates a sink with a fresh registry and trace buffer.
Sink makeSink();

// True iff a sink is currently attached. Lock-free; the fast path for
// instrumented code that wants to skip work entirely when detached.
bool attached();

// Copy of the current sink ({} when detached). Holders of the returned
// shared_ptrs are unaffected by later detach/attach.
Sink sink();

// Replaces the process-wide sink. attach({}) is equivalent to detach().
void attach(Sink s);
void detach();

// RAII attach of a fresh (or given) sink; restores the previous sink on
// destruction so scopes nest.
class ScopedObservability {
 public:
  ScopedObservability() : ScopedObservability(makeSink()) {}
  explicit ScopedObservability(Sink s);
  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;
  ~ScopedObservability();

  MetricsRegistry& metrics() { return *sink_.metrics; }
  TraceBuffer& trace() { return *sink_.trace; }
  const Sink& sink() const { return sink_; }

 private:
  Sink sink_;
  Sink previous_;
};

// "out.json" -> "out.trace.json"; paths without a ".json" suffix get
// ".trace.json" appended.
std::string traceExportPath(const std::string& metricsPath);

// Writes the metrics JSON to `metricsPath` and the chrome://tracing JSON to
// traceExportPath(metricsPath). Returns false (with *error set) on I/O
// failure or an empty sink.
bool writeExports(const Sink& s, const std::string& metricsPath,
                  std::string* error = nullptr);

// Handles the --metrics-out=PATH (or --metrics-out PATH) flag for program
// mains: consumes the flag from argv so downstream parsers never see it,
// attaches a fresh sink when present, and writes both exports on
// destruction.
class MetricsCli {
 public:
  MetricsCli(int& argc, char** argv);
  ~MetricsCli();

  bool enabled() const { return scope_.has_value(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::optional<ScopedObservability> scope_;
};

}  // namespace cusp::obs
