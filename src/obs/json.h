// Minimal JSON document model for the observability exports.
//
// The obs exporters (metrics document, chrome://tracing trace events) need a
// writer, and the golden-schema tests need to parse the emitted documents
// back to validate keys and values — without adding a third-party
// dependency. This is a deliberately small recursive-descent implementation
// covering exactly the JSON subset the exporters emit: objects, arrays,
// strings (with escapes), finite numbers, booleans, null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cusp::obs::json {

struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Value> array;
  // Insertion-ordered; duplicate keys are preserved as written.
  std::vector<std::pair<std::string, Value>> object;

  bool isNull() const { return type == Type::kNull; }
  bool isBool() const { return type == Type::kBool; }
  bool isNumber() const { return type == Type::kNumber; }
  bool isString() const { return type == Type::kString; }
  bool isArray() const { return type == Type::kArray; }
  bool isObject() const { return type == Type::kObject; }

  // First member named `key`, or nullptr (also nullptr on non-objects).
  const Value* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }
};

// Serializes `text` as a JSON string literal, quotes included.
std::string quote(std::string_view text);

// Parses a complete JSON document; throws std::runtime_error (with an
// offset) on malformed input or trailing garbage.
Value parse(std::string_view text);

}  // namespace cusp::obs::json
