// In-memory graph in Compressed Sparse Row form.
//
// This is the substrate format of the whole repository: the on-disk graph
// format mirrors it, CuSP builds one CsrGraph per host as the partition
// output, and the analytics engine iterates it. Nodes and edges are 64-bit
// (the paper partitions graphs with 128B edges); edge data is an optional
// parallel array of uint32 weights (used by sssp).
//
// A CSC graph is represented as the CsrGraph of the transpose: "out-edges in
// CSC" are "in-edges in CSR" (paper Section III-A).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace cusp::graph {

using NodeId = uint64_t;
using EdgeId = uint64_t;

struct Edge {
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t data = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

class CsrGraph {
 public:
  CsrGraph() = default;

  // Takes ownership of prebuilt arrays. rowStart must have numNodes+1
  // entries with rowStart[0] == 0 and rowStart[numNodes] == dests.size();
  // edgeData must be empty or the same length as dests.
  CsrGraph(std::vector<EdgeId> rowStart, std::vector<NodeId> dests,
           std::vector<uint32_t> edgeData = {});

  // Builds from an unsorted edge list via counting sort (stable within a
  // source: edges keep their relative input order).
  static CsrGraph fromEdges(NodeId numNodes, std::span<const Edge> edges,
                            bool withEdgeData = false);
  static CsrGraph fromEdges(NodeId numNodes, const std::vector<Edge>& edges,
                            bool withEdgeData = false) {
    return fromEdges(numNodes, std::span<const Edge>(edges), withEdgeData);
  }

  NodeId numNodes() const { return numNodes_; }
  EdgeId numEdges() const { return static_cast<EdgeId>(dests_.size()); }
  bool hasEdgeData() const { return !edgeData_.empty(); }

  EdgeId edgeBegin(NodeId node) const { return rowStart_[node]; }
  EdgeId edgeEnd(NodeId node) const { return rowStart_[node + 1]; }
  EdgeId outDegree(NodeId node) const {
    return rowStart_[node + 1] - rowStart_[node];
  }
  NodeId edgeDst(EdgeId edge) const { return dests_[edge]; }
  uint32_t edgeData(EdgeId edge) const {
    return edgeData_.empty() ? 0 : edgeData_[edge];
  }

  std::span<const NodeId> outNeighbors(NodeId node) const {
    return std::span<const NodeId>(dests_.data() + rowStart_[node],
                                   rowStart_[node + 1] - rowStart_[node]);
  }

  std::span<const EdgeId> rowStarts() const { return rowStart_; }
  std::span<const NodeId> destinations() const { return dests_; }
  std::span<const uint32_t> edgeDataArray() const { return edgeData_; }

  // In-memory transpose (paper: CSC is constructed from CSR without
  // communication). Edge data follows its edge. Within each transpose row,
  // edges are ordered by original source then original position, which makes
  // transpose(transpose(g)) == g for graphs whose rows are sorted.
  CsrGraph transpose() const;

  // Materializes all edges in CSR order.
  std::vector<Edge> toEdges() const;

  // Undirected view: union of edges of g and transpose(g), duplicates kept.
  CsrGraph symmetrized() const;

  // Simple undirected view: symmetrized, self loops removed, duplicate
  // edges collapsed (edge data dropped). The canonical input for triangle
  // counting.
  CsrGraph simpleSymmetrized() const;

  // Structural equality (same adjacency arrays and edge data).
  friend bool operator==(const CsrGraph&, const CsrGraph&) = default;

 private:
  NodeId numNodes_ = 0;
  std::vector<EdgeId> rowStart_{0};
  std::vector<NodeId> dests_;
  std::vector<uint32_t> edgeData_;
};

// Degree and shape statistics (paper Table III reports these per input).
struct GraphStats {
  NodeId numNodes = 0;
  EdgeId numEdges = 0;
  double avgOutDegree = 0.0;
  EdgeId maxOutDegree = 0;
  EdgeId maxInDegree = 0;
  NodeId numIsolatedNodes = 0;
};

GraphStats computeStats(const CsrGraph& graph);

}  // namespace cusp::graph
