#include "graph/edge_list.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cusp::graph {

namespace {

// Parses one unsigned integer token from [pos, line.size()); advances pos
// past the token. Returns false if the line is exhausted (only whitespace
// remains). Throws on a malformed token.
bool parseToken(const std::string& line, size_t& pos, uint64_t& value,
                size_t lineNo) {
  while (pos < line.size() &&
         (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
    ++pos;
  }
  if (pos >= line.size()) {
    return false;
  }
  const char* begin = line.data() + pos;
  const char* end = line.data() + line.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr == begin) {
    throw std::runtime_error("edge list: malformed token at line " +
                             std::to_string(lineNo));
  }
  pos = static_cast<size_t>(ptr - line.data());
  if (pos < line.size() && line[pos] != ' ' && line[pos] != '\t' &&
      line[pos] != '\r') {
    throw std::runtime_error("edge list: trailing garbage at line " +
                             std::to_string(lineNo));
  }
  return true;
}

}  // namespace

EdgeListParseResult parseEdgeList(std::istream& in) {
  EdgeListParseResult result;
  std::string line;
  size_t lineNo = 0;
  NodeId maxId = 0;
  bool sawAny = false;
  while (std::getline(in, line)) {
    ++lineNo;
    size_t pos = 0;
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r')) {
      ++pos;
    }
    if (pos >= line.size() || line[pos] == '#' || line[pos] == '%') {
      continue;
    }
    uint64_t src = 0;
    uint64_t dst = 0;
    uint64_t weight = 0;
    if (!parseToken(line, pos, src, lineNo)) {
      continue;
    }
    if (!parseToken(line, pos, dst, lineNo)) {
      throw std::runtime_error("edge list: missing destination at line " +
                               std::to_string(lineNo));
    }
    Edge edge{src, dst, 0};
    if (parseToken(line, pos, weight, lineNo)) {
      edge.data = static_cast<uint32_t>(weight);
      result.sawWeights = true;
      uint64_t extra = 0;
      if (parseToken(line, pos, extra, lineNo)) {
        throw std::runtime_error("edge list: too many fields at line " +
                                 std::to_string(lineNo));
      }
    }
    maxId = std::max({maxId, edge.src, edge.dst});
    sawAny = true;
    result.edges.push_back(edge);
  }
  result.numNodes = sawAny ? maxId + 1 : 0;
  return result;
}

EdgeListParseResult parseEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("edge list: cannot open " + path);
  }
  return parseEdgeList(in);
}

void writeEdgeList(std::ostream& out, const CsrGraph& graph) {
  for (NodeId src = 0; src < graph.numNodes(); ++src) {
    for (EdgeId e = graph.edgeBegin(src); e < graph.edgeEnd(src); ++e) {
      out << src << ' ' << graph.edgeDst(e);
      if (graph.hasEdgeData()) {
        out << ' ' << graph.edgeData(e);
      }
      out << '\n';
    }
  }
}

void writeEdgeListFile(const std::string& path, const CsrGraph& graph) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("edge list: cannot create " + path);
  }
  writeEdgeList(out, graph);
  if (!out) {
    throw std::runtime_error("edge list: write failed for " + path);
  }
}

CsrGraph edgeListToCsr(const EdgeListParseResult& parsed, bool keepWeights) {
  return CsrGraph::fromEdges(parsed.numNodes, parsed.edges,
                             keepWeights && parsed.sawWeights);
}

}  // namespace cusp::graph
