#include "graph/csr_graph.h"

#include <algorithm>
#include <stdexcept>

namespace cusp::graph {

CsrGraph::CsrGraph(std::vector<EdgeId> rowStart, std::vector<NodeId> dests,
                   std::vector<uint32_t> edgeData)
    : numNodes_(rowStart.empty() ? 0 : rowStart.size() - 1),
      rowStart_(std::move(rowStart)),
      dests_(std::move(dests)),
      edgeData_(std::move(edgeData)) {
  if (rowStart_.empty()) {
    throw std::invalid_argument("CsrGraph: rowStart must have >= 1 entry");
  }
  if (rowStart_.front() != 0 || rowStart_.back() != dests_.size()) {
    throw std::invalid_argument("CsrGraph: rowStart does not frame dests");
  }
  if (!std::is_sorted(rowStart_.begin(), rowStart_.end())) {
    throw std::invalid_argument("CsrGraph: rowStart must be non-decreasing");
  }
  if (!edgeData_.empty() && edgeData_.size() != dests_.size()) {
    throw std::invalid_argument("CsrGraph: edgeData length mismatch");
  }
  for (NodeId dst : dests_) {
    if (dst >= numNodes_) {
      throw std::invalid_argument("CsrGraph: destination out of range");
    }
  }
}

CsrGraph CsrGraph::fromEdges(NodeId numNodes, std::span<const Edge> edges,
                             bool withEdgeData) {
  std::vector<EdgeId> degree(numNodes, 0);
  for (const Edge& e : edges) {
    if (e.src >= numNodes || e.dst >= numNodes) {
      throw std::invalid_argument("CsrGraph::fromEdges: endpoint out of range");
    }
    ++degree[e.src];
  }
  std::vector<EdgeId> rowStart(numNodes + 1, 0);
  for (NodeId v = 0; v < numNodes; ++v) {
    rowStart[v + 1] = rowStart[v] + degree[v];
  }
  std::vector<NodeId> dests(edges.size());
  std::vector<uint32_t> edgeData;
  if (withEdgeData) {
    edgeData.resize(edges.size());
  }
  std::vector<EdgeId> cursor(rowStart.begin(), rowStart.end() - 1);
  for (const Edge& e : edges) {
    const EdgeId slot = cursor[e.src]++;
    dests[slot] = e.dst;
    if (withEdgeData) {
      edgeData[slot] = e.data;
    }
  }
  return CsrGraph(std::move(rowStart), std::move(dests), std::move(edgeData));
}

CsrGraph CsrGraph::transpose() const {
  std::vector<EdgeId> inDegree(numNodes_, 0);
  for (NodeId dst : dests_) {
    ++inDegree[dst];
  }
  std::vector<EdgeId> rowStart(numNodes_ + 1, 0);
  for (NodeId v = 0; v < numNodes_; ++v) {
    rowStart[v + 1] = rowStart[v] + inDegree[v];
  }
  std::vector<NodeId> dests(dests_.size());
  std::vector<uint32_t> edgeData;
  if (!edgeData_.empty()) {
    edgeData.resize(edgeData_.size());
  }
  std::vector<EdgeId> cursor(rowStart.begin(), rowStart.end() - 1);
  for (NodeId src = 0; src < numNodes_; ++src) {
    for (EdgeId e = rowStart_[src]; e < rowStart_[src + 1]; ++e) {
      const EdgeId slot = cursor[dests_[e]]++;
      dests[slot] = src;
      if (!edgeData_.empty()) {
        edgeData[slot] = edgeData_[e];
      }
    }
  }
  return CsrGraph(std::move(rowStart), std::move(dests), std::move(edgeData));
}

std::vector<Edge> CsrGraph::toEdges() const {
  std::vector<Edge> edges;
  edges.reserve(dests_.size());
  for (NodeId src = 0; src < numNodes_; ++src) {
    for (EdgeId e = rowStart_[src]; e < rowStart_[src + 1]; ++e) {
      edges.push_back(Edge{src, dests_[e], edgeData(e)});
    }
  }
  return edges;
}

CsrGraph CsrGraph::symmetrized() const {
  std::vector<Edge> edges = toEdges();
  const size_t forward = edges.size();
  edges.reserve(forward * 2);
  for (size_t i = 0; i < forward; ++i) {
    edges.push_back(Edge{edges[i].dst, edges[i].src, edges[i].data});
  }
  return fromEdges(numNodes_, edges, hasEdgeData());
}

CsrGraph CsrGraph::simpleSymmetrized() const {
  std::vector<Edge> edges;
  edges.reserve(dests_.size() * 2);
  for (NodeId src = 0; src < numNodes_; ++src) {
    for (EdgeId e = rowStart_[src]; e < rowStart_[src + 1]; ++e) {
      const NodeId dst = dests_[e];
      if (src != dst) {
        edges.push_back(Edge{src, dst, 0});
        edges.push_back(Edge{dst, src, 0});
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return fromEdges(numNodes_, edges);
}

GraphStats computeStats(const CsrGraph& graph) {
  GraphStats stats;
  stats.numNodes = graph.numNodes();
  stats.numEdges = graph.numEdges();
  stats.avgOutDegree =
      stats.numNodes == 0
          ? 0.0
          : static_cast<double>(stats.numEdges) / static_cast<double>(stats.numNodes);
  std::vector<EdgeId> inDegree(graph.numNodes(), 0);
  for (NodeId v = 0; v < graph.numNodes(); ++v) {
    const EdgeId out = graph.outDegree(v);
    stats.maxOutDegree = std::max(stats.maxOutDegree, out);
    for (NodeId n : graph.outNeighbors(v)) {
      ++inDegree[n];
    }
  }
  for (NodeId v = 0; v < graph.numNodes(); ++v) {
    stats.maxInDegree = std::max(stats.maxInDegree, inDegree[v]);
    if (graph.outDegree(v) == 0 && inDegree[v] == 0) {
      ++stats.numIsolatedNodes;
    }
  }
  return stats;
}

}  // namespace cusp::graph
