#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "support/random.h"

namespace cusp::graph {

using support::hashU64;
using support::Rng;

namespace {

// Combines a generator seed with a stream index so each item draws from an
// independent, reproducible stream.
Rng rngFor(uint64_t seed, uint64_t index) {
  return Rng(hashU64(seed * 0x9e3779b97f4a7c15ULL + index + 1));
}

// Integer Pareto sample in [1, cap]: heavy-tailed out-degrees.
uint64_t paretoInt(Rng& rng, double alpha, double xmin, uint64_t cap) {
  const double u = rng.nextDouble();
  const double x = xmin / std::pow(1.0 - u, 1.0 / alpha);
  const uint64_t v = static_cast<uint64_t>(x);
  return std::clamp<uint64_t>(v, 1, cap);
}

// Any single generator materializing more edges than this is a mistake, not
// a workload: 2^40 edges is ~16 TiB of Edge structs, far past anything this
// process can hold, and catching it here gives a diagnosis instead of an
// OOM kill (or, worse, a silently wrapped reserve).
constexpr uint64_t kMaxGeneratedEdges = 1ull << 40;

// a * b with overflow detection; `what` names the computation for the
// error message.
uint64_t checkedMul(uint64_t a, uint64_t b, const char* what) {
  uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    throw GeneratorError(std::string(what) +
                         ": size arithmetic overflows uint64_t (" +
                         std::to_string(a) + " * " + std::to_string(b) + ")");
  }
  return out;
}

uint64_t checkedEdgeCount(uint64_t count, const char* what) {
  if (count > kMaxGeneratedEdges) {
    throw GeneratorError(std::string(what) + ": " + std::to_string(count) +
                         " edges exceeds the generator bound of 2^40");
  }
  return count;
}

}  // namespace

CsrGraph generateRmat(const RmatParams& params) {
  const double sum = params.a + params.b + params.c + params.d;
  if (std::abs(sum - 1.0) > 1e-9) {
    throw std::invalid_argument("generateRmat: quadrant weights must sum to 1");
  }
  if (params.scale == 0 || params.scale > 40) {
    throw std::invalid_argument("generateRmat: scale out of range");
  }
  const uint64_t numNodes = 1ull << params.scale;
  std::vector<Edge> edges;
  edges.reserve(checkedEdgeCount(params.numEdges, "generateRmat"));
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  for (uint64_t i = 0; i < params.numEdges; ++i) {
    Rng rng = rngFor(params.seed, i);
    uint64_t src = 0;
    uint64_t dst = 0;
    for (uint32_t bit = 0; bit < params.scale; ++bit) {
      const double r = rng.nextDouble();
      src <<= 1;
      dst <<= 1;
      if (r < params.a) {
        // top-left: neither bit set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (params.removeSelfLoops && src == dst) {
      continue;
    }
    edges.push_back(Edge{src, dst, 0});
  }
  if (params.dedupe) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph generateWebCrawl(const WebCrawlParams& params) {
  if (params.numNodes == 0) {
    return CsrGraph();
  }
  if (params.localFraction < 0.0 || params.localFraction > 1.0) {
    throw std::invalid_argument("generateWebCrawl: localFraction not in [0,1]");
  }
  const uint64_t cap = params.maxOutDegree != 0
                           ? params.maxOutDegree
                           : std::max<uint64_t>(4, params.numNodes / 4);
  // Pareto with shape alpha and min xmin has mean alpha*xmin/(alpha-1);
  // choose xmin so the mean out-degree matches the request.
  const double xmin =
      params.avgOutDegree * (params.outDegreeAlpha - 1.0) / params.outDegreeAlpha;
  const double expectedEdges =
      params.avgOutDegree * static_cast<double>(params.numNodes) * 1.1;
  if (!(expectedEdges >= 0.0) ||
      expectedEdges > static_cast<double>(kMaxGeneratedEdges)) {
    throw GeneratorError(
        "generateWebCrawl: expected edge count " +
        std::to_string(expectedEdges) +
        " is negative, NaN, or exceeds the generator bound of 2^40");
  }
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(expectedEdges));
  for (uint64_t u = 0; u < params.numNodes; ++u) {
    Rng rng = rngFor(params.seed, u);
    const uint64_t degree = paretoInt(rng, params.outDegreeAlpha, xmin, cap);
    for (uint64_t k = 0; k < degree; ++k) {
      uint64_t dst;
      if (rng.nextDouble() < params.localFraction) {
        // Local link: uniform within a window around u (site locality).
        const uint64_t configured =
            params.localWindow != 0
                ? params.localWindow
                : std::max<uint64_t>(16, params.numNodes / 256);
        const uint64_t window = std::min(configured, params.numNodes);
        const uint64_t lo = u >= window / 2 ? u - window / 2 : 0;
        const uint64_t hi = std::min(params.numNodes, lo + window);
        dst = lo + rng.nextBounded(hi - lo);
      } else {
        // Hub link: strongly skewed toward a small set of popular pages.
        // dst = floor(N * r^hubSkew) concentrates mass near node 0; a fixed
        // per-graph permutation would only relabel, so we keep ids direct
        // and let locality-sensitive policies see crawl-order ids, as they
        // would in a real crawl.
        const double r = rng.nextDouble();
        dst = static_cast<uint64_t>(static_cast<double>(params.numNodes) *
                                    std::pow(r, params.hubSkew));
        dst = std::min(dst, params.numNodes - 1);
      }
      edges.push_back(Edge{u, dst, 0});
    }
  }
  return CsrGraph::fromEdges(params.numNodes, edges);
}

CsrGraph generateErdosRenyi(uint64_t numNodes, uint64_t numEdges,
                            uint64_t seed) {
  if (numNodes == 0 && numEdges != 0) {
    throw std::invalid_argument("generateErdosRenyi: edges without nodes");
  }
  std::vector<Edge> edges;
  edges.reserve(checkedEdgeCount(numEdges, "generateErdosRenyi"));
  for (uint64_t i = 0; i < numEdges; ++i) {
    Rng rng = rngFor(seed, i);
    edges.push_back(
        Edge{rng.nextBounded(numNodes), rng.nextBounded(numNodes), 0});
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph generateBarabasiAlbert(uint64_t numNodes, uint64_t edgesPerNode,
                                uint64_t seed) {
  if (edgesPerNode == 0) {
    throw std::invalid_argument(
        "generateBarabasiAlbert: edgesPerNode must be >= 1");
  }
  if (numNodes == 0) {
    return CsrGraph();
  }
  // `endpoints` holds every edge endpoint seen so far; sampling uniformly
  // from it is sampling proportionally to degree.
  const uint64_t totalEdges = checkedEdgeCount(
      checkedMul(numNodes, edgesPerNode, "generateBarabasiAlbert"),
      "generateBarabasiAlbert");
  std::vector<Edge> edges;
  std::vector<uint64_t> endpoints;
  endpoints.reserve(
      checkedMul(totalEdges, 2, "generateBarabasiAlbert endpoints"));
  endpoints.push_back(0);  // seed vertex
  Rng rng(hashU64(seed + 0x9e37));
  for (uint64_t v = 1; v < numNodes; ++v) {
    for (uint64_t i = 0; i < edgesPerNode; ++i) {
      const uint64_t target =
          endpoints[rng.nextBounded(endpoints.size())];
      edges.push_back(Edge{v, target, 0});
      endpoints.push_back(target);
    }
    endpoints.push_back(v);
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph generateWattsStrogatz(uint64_t numNodes, uint64_t neighborsEachSide,
                               double rewireProbability, uint64_t seed) {
  if (rewireProbability < 0.0 || rewireProbability > 1.0) {
    throw std::invalid_argument(
        "generateWattsStrogatz: rewireProbability not in [0,1]");
  }
  if (numNodes == 0) {
    return CsrGraph();
  }
  std::vector<Edge> edges;
  edges.reserve(checkedEdgeCount(
      checkedMul(numNodes, neighborsEachSide, "generateWattsStrogatz"),
      "generateWattsStrogatz"));
  Rng rng(hashU64(seed + 0x51f1));
  for (uint64_t v = 0; v < numNodes; ++v) {
    for (uint64_t k = 1; k <= neighborsEachSide; ++k) {
      uint64_t dst = (v + k) % numNodes;
      if (rng.nextDouble() < rewireProbability) {
        dst = rng.nextBounded(numNodes);
      }
      edges.push_back(Edge{v, dst, 0});
    }
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph permuteNodeIds(const CsrGraph& graph, uint64_t seed) {
  const uint64_t numNodes = graph.numNodes();
  std::vector<uint64_t> perm(numNodes);
  for (uint64_t v = 0; v < numNodes; ++v) {
    perm[v] = v;
  }
  // Fisher–Yates with the deterministic generator.
  Rng rng(hashU64(seed + 0x7e57));
  for (uint64_t i = numNodes; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.nextBounded(i)]);
  }
  std::vector<Edge> edges = graph.toEdges();
  for (Edge& e : edges) {
    e.src = perm[e.src];
    e.dst = perm[e.dst];
  }
  return CsrGraph::fromEdges(numNodes, edges, graph.hasEdgeData());
}

CsrGraph makePath(uint64_t numNodes) {
  std::vector<Edge> edges;
  for (uint64_t i = 0; i + 1 < numNodes; ++i) {
    edges.push_back(Edge{i, i + 1, 0});
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph makeCycle(uint64_t numNodes) {
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < numNodes; ++i) {
    edges.push_back(Edge{i, (i + 1) % numNodes, 0});
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph makeStar(uint64_t numLeaves) {
  if (numLeaves == UINT64_MAX) {
    throw GeneratorError("makeStar: numLeaves + 1 overflows uint64_t");
  }
  checkedEdgeCount(numLeaves, "makeStar");
  std::vector<Edge> edges;
  for (uint64_t i = 1; i <= numLeaves; ++i) {
    edges.push_back(Edge{0, i, 0});
  }
  return CsrGraph::fromEdges(numLeaves + 1, edges);
}

CsrGraph makeComplete(uint64_t numNodes) {
  if (numNodes > 0) {
    checkedEdgeCount(checkedMul(numNodes, numNodes - 1, "makeComplete"),
                     "makeComplete");
  }
  std::vector<Edge> edges;
  for (uint64_t i = 0; i < numNodes; ++i) {
    for (uint64_t j = 0; j < numNodes; ++j) {
      if (i != j) {
        edges.push_back(Edge{i, j, 0});
      }
    }
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph makeGrid(uint64_t rows, uint64_t cols) {
  const uint64_t numNodes = checkedMul(rows, cols, "makeGrid");
  checkedEdgeCount(checkedMul(numNodes, 2, "makeGrid"), "makeGrid");
  std::vector<Edge> edges;
  auto id = [cols](uint64_t r, uint64_t c) { return r * cols + c; };
  for (uint64_t r = 0; r < rows; ++r) {
    for (uint64_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(Edge{id(r, c), id(r, c + 1), 0});
      }
      if (r + 1 < rows) {
        edges.push_back(Edge{id(r, c), id(r + 1, c), 0});
      }
    }
  }
  return CsrGraph::fromEdges(numNodes, edges);
}

CsrGraph withRandomWeights(const CsrGraph& graph, uint32_t maxWeight,
                           uint64_t seed) {
  if (maxWeight == 0) {
    throw std::invalid_argument("withRandomWeights: maxWeight must be >= 1");
  }
  std::vector<uint32_t> weights(graph.numEdges());
  for (EdgeId e = 0; e < graph.numEdges(); ++e) {
    Rng rng = rngFor(seed, e);
    weights[e] = 1 + static_cast<uint32_t>(rng.nextBounded(maxWeight));
  }
  return CsrGraph(
      std::vector<EdgeId>(graph.rowStarts().begin(), graph.rowStarts().end()),
      std::vector<NodeId>(graph.destinations().begin(),
                          graph.destinations().end()),
      std::move(weights));
}

const std::vector<StandInInfo>& standInCatalog() {
  // |E|/|V| ratios from paper Table III.
  static const std::vector<StandInInfo> catalog = {
      {"kron", 16.5}, {"gsh", 34.3}, {"clueweb", 43.5},
      {"uk", 60.4},   {"wdc", 36.1},
  };
  return catalog;
}

CsrGraph makeStandIn(const std::string& name, uint64_t targetEdges,
                     uint64_t seed) {
  const auto& catalog = standInCatalog();
  const auto it =
      std::find_if(catalog.begin(), catalog.end(),
                   [&](const StandInInfo& info) { return info.name == name; });
  if (it == catalog.end()) {
    throw std::invalid_argument("makeStandIn: unknown input name " + name);
  }
  if (name == "kron") {
    RmatParams params;
    const double nodes = static_cast<double>(targetEdges) / it->edgesPerNode;
    params.scale = static_cast<uint32_t>(
        std::max(4.0, std::ceil(std::log2(std::max(nodes, 16.0)))));
    params.numEdges = targetEdges;
    params.seed = seed;
    return generateRmat(params);
  }
  WebCrawlParams params;
  params.numNodes = std::max<uint64_t>(
      16, static_cast<uint64_t>(static_cast<double>(targetEdges) /
                                it->edgesPerNode));
  params.avgOutDegree = it->edgesPerNode;
  params.seed = seed + static_cast<uint64_t>(it - catalog.begin());
  // Differentiate the crawls slightly, mirroring their Table III character:
  // uk14 is densest and most local; wdc12 is the largest and least local.
  if (name == "uk") {
    params.localFraction = 0.7;
  } else if (name == "wdc") {
    params.localFraction = 0.4;
    params.hubSkew = 5.0;
  } else if (name == "clueweb") {
    params.hubSkew = 4.5;
  }
  return generateWebCrawl(params);
}

}  // namespace cusp::graph
