#include "graph/graph_file.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>

#include "support/crc32.h"

namespace cusp::graph {

namespace {

constexpr uint64_t kMagic = 0x0000000031524743ULL;  // "CGR1"

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) {
      std::fclose(f);
    }
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
void writeArray(std::FILE* f, const T* data, size_t count,
                const std::string& path) {
  if (count == 0) {
    return;
  }
  if (std::fwrite(data, sizeof(T), count, f) != count) {
    throw std::runtime_error("GraphFile: short write to " + path);
  }
}

template <typename T>
void readArray(std::FILE* f, T* data, size_t count, const std::string& path) {
  if (count == 0) {
    return;
  }
  if (std::fread(data, sizeof(T), count, f) != count) {
    throw GraphFileError(path, "truncated file");
  }
}

// Actual byte size of an open file (seek to end, restore position).
uint64_t fileSizeOf(std::FILE* f, const std::string& path) {
  const long pos = std::ftell(f);
  if (pos < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    throw GraphFileError(path, "cannot determine file size");
  }
  const long end = std::ftell(f);
  if (end < 0 || std::fseek(f, pos, SEEK_SET) != 0) {
    throw GraphFileError(path, "cannot determine file size");
  }
  return static_cast<uint64_t>(end);
}

// Header preflight: rejects claimed element counts whose payload cannot
// possibly fit in `available` bytes — BEFORE any buffer is sized from them.
// A header of random bytes typically claims astronomical counts; without
// this check the loader would attempt a multi-exabyte resize() (or, for
// numNodes == UINT64_MAX, overflow numNodes + 1 to zero and then misindex
// rowStart). Overflow-safe: divides instead of multiplying.
void requireFits(uint64_t count, uint64_t elemSize, uint64_t available,
                 const std::string& path, const char* what) {
  if (count > available / elemSize) {
    throw GraphFileError(path, std::string("header claims more ") + what +
                                   " than the file can hold");
  }
}

}  // namespace

GraphFile GraphFile::fromCsr(const CsrGraph& graph) {
  GraphFile file;
  file.numNodes_ = graph.numNodes();
  file.numEdges_ = graph.numEdges();
  file.rowStart_.assign(graph.rowStarts().begin(), graph.rowStarts().end());
  file.dests_.assign(graph.destinations().begin(),
                     graph.destinations().end());
  file.edgeData_.assign(graph.edgeDataArray().begin(),
                        graph.edgeDataArray().end());
  return file;
}

GraphFile GraphFile::load(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw GraphFileError(path, "cannot open");
  }
  const uint64_t fileBytes = fileSizeOf(f.get(), path);
  if (fileBytes < 4 * sizeof(uint64_t)) {
    throw GraphFileError(path, "truncated header");
  }
  uint32_t crc = 0;
  auto readChecked = [&](auto* data, size_t count) {
    readArray(f.get(), data, count, path);
    crc = support::crc32Update(crc, data, count * sizeof(*data));
  };
  uint64_t header[4];
  readChecked(header, 4);
  if (header[0] != kMagic) {
    throw GraphFileError(path, "bad magic");
  }
  const uint64_t sizeofEdgeData = header[1];
  if (sizeofEdgeData != 0 && sizeofEdgeData != 4) {
    throw GraphFileError(path, "unsupported edge data size");
  }
  GraphFile file;
  file.numNodes_ = header[2];
  file.numEdges_ = header[3];
  // Validate the claimed counts against the real file size before sizing
  // any buffer from them (see requireFits). numNodes + 1 row entries, so
  // reject numNodes at the u64 ceiling outright.
  const uint64_t payloadBytes = fileBytes - 4 * sizeof(uint64_t);
  if (file.numNodes_ == UINT64_MAX) {
    throw GraphFileError(path, "header claims more nodes than the file can hold");
  }
  requireFits(file.numNodes_ + 1, sizeof(uint64_t), payloadBytes, path,
              "nodes");
  requireFits(file.numEdges_, sizeof(uint64_t) + sizeofEdgeData,
              payloadBytes - (file.numNodes_ + 1) * sizeof(uint64_t), path,
              "edges");
  file.rowStart_.resize(file.numNodes_ + 1);
  readChecked(file.rowStart_.data(), file.rowStart_.size());
  if (file.rowStart_.front() != 0 || file.rowStart_.back() != file.numEdges_ ||
      !std::is_sorted(file.rowStart_.begin(), file.rowStart_.end())) {
    throw GraphFileError(path, "corrupt row index");
  }
  file.dests_.resize(file.numEdges_);
  readChecked(file.dests_.data(), file.dests_.size());
  for (uint64_t dst : file.dests_) {
    if (dst >= file.numNodes_) {
      throw GraphFileError(path, "destination out of range");
    }
  }
  if (sizeofEdgeData == 4) {
    file.edgeData_.resize(file.numEdges_);
    readChecked(file.edgeData_.data(), file.edgeData_.size());
  }
  // Optional CRC footer after the payload (newer writers always add it);
  // legacy files simply end here and are accepted unverified.
  uint64_t footer[2];
  if (std::fread(footer, 1, sizeof(footer), f.get()) == sizeof(footer) &&
      footer[0] == support::kCrcFooterMagic &&
      footer[1] != static_cast<uint64_t>(crc)) {
    throw GraphFileError(path, "checksum mismatch");
  }
  return file;
}

void GraphFile::save(const std::string& path, const CsrGraph& graph) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::runtime_error("GraphFile: cannot create " + path);
  }
  uint32_t crc = 0;
  auto writeChecked = [&](const auto* data, size_t count) {
    writeArray(f.get(), data, count, path);
    crc = support::crc32Update(crc, data, count * sizeof(*data));
  };
  const uint64_t header[4] = {kMagic, graph.hasEdgeData() ? 4ull : 0ull,
                              graph.numNodes(), graph.numEdges()};
  writeChecked(header, 4);
  writeChecked(graph.rowStarts().data(), graph.rowStarts().size());
  writeChecked(graph.destinations().data(), graph.destinations().size());
  if (graph.hasEdgeData()) {
    writeChecked(graph.edgeDataArray().data(), graph.edgeDataArray().size());
  }
  const uint64_t footer[2] = {support::kCrcFooterMagic,
                              static_cast<uint64_t>(crc)};
  writeArray(f.get(), footer, 2, path);
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("GraphFile: flush failed for " + path);
  }
}

CsrGraph GraphFile::toCsr() const {
  return CsrGraph(rowStart_, dests_, edgeData_);
}

GraphFile GraphFile::loadGalois(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (!f) {
    throw GraphFileError(path, "cannot open");
  }
  const uint64_t fileBytes = fileSizeOf(f.get(), path);
  if (fileBytes < 4 * sizeof(uint64_t)) {
    throw GraphFileError(path, "truncated .gr header");
  }
  uint64_t header[4];
  readArray(f.get(), header, 4, path);
  if (header[0] != 1) {
    throw GraphFileError(path, "unsupported .gr version");
  }
  const uint64_t sizeofEdgeData = header[1];
  if (sizeofEdgeData != 0 && sizeofEdgeData != 4) {
    throw GraphFileError(path, "unsupported .gr edge data size");
  }
  GraphFile file;
  file.numNodes_ = header[2];
  file.numEdges_ = header[3];
  // Same preflight as load(): row index is numNodes u64s, dests numEdges
  // u32s, edge data (if any) numEdges more u32s — all of which must fit
  // the real file before any buffer is sized from the claimed counts.
  const uint64_t payloadBytes = fileBytes - 4 * sizeof(uint64_t);
  if (file.numNodes_ == UINT64_MAX) {
    throw GraphFileError(path,
                         "header claims more nodes than the file can hold");
  }
  requireFits(file.numNodes_, sizeof(uint64_t), payloadBytes, path, "nodes");
  requireFits(file.numEdges_, sizeof(uint32_t) + sizeofEdgeData,
              payloadBytes - file.numNodes_ * sizeof(uint64_t), path, "edges");
  // v1 stores row END offsets; rebuild our rowStart convention.
  std::vector<uint64_t> outIdx(file.numNodes_);
  readArray(f.get(), outIdx.data(), outIdx.size(), path);
  file.rowStart_.assign(file.numNodes_ + 1, 0);
  for (uint64_t v = 0; v < file.numNodes_; ++v) {
    file.rowStart_[v + 1] = outIdx[v];
  }
  if ((file.numNodes_ > 0 && file.rowStart_.back() != file.numEdges_) ||
      !std::is_sorted(file.rowStart_.begin(), file.rowStart_.end())) {
    throw GraphFileError(path, "corrupt .gr index");
  }
  std::vector<uint32_t> dests32(file.numEdges_);
  readArray(f.get(), dests32.data(), dests32.size(), path);
  file.dests_.assign(dests32.begin(), dests32.end());
  for (uint64_t dst : file.dests_) {
    if (dst >= file.numNodes_) {
      throw GraphFileError(path, ".gr destination out of range");
    }
  }
  if (sizeofEdgeData == 4) {
    if (file.numEdges_ % 2 == 1) {
      uint32_t padding = 0;
      readArray(f.get(), &padding, 1, path);
    }
    file.edgeData_.resize(file.numEdges_);
    readArray(f.get(), file.edgeData_.data(), file.edgeData_.size(), path);
  }
  return file;
}

void GraphFile::saveGalois(const std::string& path, const CsrGraph& graph) {
  if (graph.numNodes() > UINT32_MAX) {
    throw std::invalid_argument(
        "GraphFile: .gr v1 cannot hold graphs with 2^32+ nodes");
  }
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (!f) {
    throw std::runtime_error("GraphFile: cannot create " + path);
  }
  const uint64_t header[4] = {1, graph.hasEdgeData() ? 4ull : 0ull,
                              graph.numNodes(), graph.numEdges()};
  writeArray(f.get(), header, 4, path);
  // Row END offsets.
  std::vector<uint64_t> outIdx(graph.numNodes());
  for (uint64_t v = 0; v < graph.numNodes(); ++v) {
    outIdx[v] = graph.edgeEnd(v);
  }
  writeArray(f.get(), outIdx.data(), outIdx.size(), path);
  std::vector<uint32_t> dests32(graph.destinations().begin(),
                                graph.destinations().end());
  writeArray(f.get(), dests32.data(), dests32.size(), path);
  if (graph.hasEdgeData()) {
    if (graph.numEdges() % 2 == 1) {
      const uint32_t padding = 0;
      writeArray(f.get(), &padding, 1, path);
    }
    writeArray(f.get(), graph.edgeDataArray().data(),
               graph.edgeDataArray().size(), path);
  }
  if (std::fflush(f.get()) != 0) {
    throw std::runtime_error("GraphFile: flush failed for " + path);
  }
}

std::vector<ReadRange> computeReadRanges(std::span<const uint64_t> rowStart,
                                         uint32_t numHosts, double nodeWeight,
                                         double edgeWeight) {
  if (numHosts == 0) {
    throw std::invalid_argument("computeReadRanges: numHosts must be > 0");
  }
  if (rowStart.empty()) {
    throw std::invalid_argument("computeReadRanges: empty row index");
  }
  if (nodeWeight < 0 || edgeWeight < 0 || (nodeWeight == 0 && edgeWeight == 0)) {
    throw std::invalid_argument("computeReadRanges: bad importance weights");
  }
  const uint64_t numNodes = rowStart.size() - 1;
  const uint64_t numEdges = rowStart.back();
  const double totalUnits = nodeWeight * static_cast<double>(numNodes) +
                            edgeWeight * static_cast<double>(numEdges);
  // unitsBefore(v) is monotone in v, so each split point is a binary search.
  auto unitsBefore = [&](uint64_t v) {
    return nodeWeight * static_cast<double>(v) +
           edgeWeight * static_cast<double>(rowStart[v]);
  };
  std::vector<ReadRange> ranges(numHosts);
  uint64_t prev = 0;
  for (uint32_t h = 0; h < numHosts; ++h) {
    const double target =
        totalUnits * static_cast<double>(h + 1) / static_cast<double>(numHosts);
    uint64_t lo = prev;
    uint64_t hi = numNodes;
    // Find the smallest v with unitsBefore(v) >= target.
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (unitsBefore(mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint64_t cut = (h + 1 == numHosts) ? numNodes : lo;
    ranges[h] = ReadRange{prev, cut, rowStart[prev], rowStart[cut]};
    prev = cut;
  }
  return ranges;
}

std::vector<ReadRange> contiguousEbRanges(std::span<const uint64_t> rowStart,
                                          uint32_t numHosts) {
  if (numHosts == 0) {
    throw std::invalid_argument("contiguousEbRanges: numHosts must be > 0");
  }
  if (rowStart.empty()) {
    throw std::invalid_argument("contiguousEbRanges: empty row index");
  }
  const uint64_t numNodes = rowStart.size() - 1;
  const uint64_t numEdges = rowStart.back();
  const uint64_t blockSize = (numEdges + 1 + numHosts - 1) / numHosts;
  std::vector<ReadRange> ranges(numHosts);
  uint64_t prev = 0;
  for (uint32_t h = 0; h < numHosts; ++h) {
    // End of host h's range: first v with floor(rowStart[v]/blockSize) > h,
    // i.e. rowStart[v] >= (h+1)*blockSize. Binary search (rowStart sorted).
    const uint64_t bound = (h + 1) * blockSize;
    uint64_t lo = prev;
    uint64_t hi = numNodes;
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (rowStart[mid] < bound) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint64_t cut = (h + 1 == numHosts) ? numNodes : lo;
    ranges[h] = ReadRange{prev, cut, rowStart[prev], rowStart[cut]};
    prev = cut;
  }
  return ranges;
}

uint32_t readingHostOf(std::span<const ReadRange> ranges, uint64_t node) {
  // Binary search over nodeBegin; ranges are contiguous and sorted, but some
  // may be empty, so find the last range whose nodeBegin <= node and then
  // advance past empties.
  uint32_t lo = 0;
  uint32_t hi = static_cast<uint32_t>(ranges.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (ranges[mid].nodeEnd <= node) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= ranges.size() || node < ranges[lo].nodeBegin ||
      node >= ranges[lo].nodeEnd) {
    throw std::out_of_range("readingHostOf: node not covered by any range");
  }
  return lo;
}

}  // namespace cusp::graph
