#include "graph/graph_file.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <stdexcept>

#include "support/crc32.h"
#include "support/storage.h"

namespace cusp::graph {

namespace {

constexpr uint64_t kMagic = 0x0000000031524743ULL;  // "CGR1"

// Graph I/O goes through the storage seam (support/storage.h): loads pull
// the whole image with readFileBytes — so injected read failures and
// at-rest bit rot apply — and parse from memory; saves build the image in
// memory and commit it with the durable atomic write protocol, so a crash
// mid-save can never leave a torn .cgr/.gr behind. Graph files are MB-scale
// here, so whole-image buffering is cheap.

// Sequential typed reads over an in-memory file image; all the validation
// of the former FILE*-based reader, with EOF as a typed GraphFileError.
class ByteReader {
 public:
  ByteReader(const std::vector<uint8_t>& bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  template <typename T>
  void read(T* data, size_t count) {
    const size_t want = count * sizeof(T);
    if (want > bytes_.size() - pos_) {
      throw GraphFileError(path_, "truncated file");
    }
    if (want > 0) {
      std::memcpy(data, bytes_.data() + pos_, want);
    }
    pos_ += want;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<uint8_t>& bytes_;
  const std::string& path_;
  size_t pos_ = 0;
};

template <typename T>
void appendBytes(std::vector<uint8_t>& out, const T* data, size_t count) {
  const size_t bytes = count * sizeof(T);
  if (bytes == 0) {
    return;
  }
  const size_t offset = out.size();
  out.resize(offset + bytes);
  std::memcpy(out.data() + offset, data, bytes);
}

// Whole-image read through the storage seam; missing file and injected
// read failure both surface as typed GraphFileErrors.
std::vector<uint8_t> readImage(const std::string& path) {
  std::optional<std::vector<uint8_t>> image;
  try {
    image = support::readFileBytes(path);
  } catch (const support::StorageError& e) {
    throw GraphFileError(path,
                         std::string("storage read failure (") + e.kindName() +
                             ")");
  }
  if (!image) {
    throw GraphFileError(path, "cannot open");
  }
  return std::move(*image);
}

// Header preflight: rejects claimed element counts whose payload cannot
// possibly fit in `available` bytes — BEFORE any buffer is sized from them.
// A header of random bytes typically claims astronomical counts; without
// this check the loader would attempt a multi-exabyte resize() (or, for
// numNodes == UINT64_MAX, overflow numNodes + 1 to zero and then misindex
// rowStart). Overflow-safe: divides instead of multiplying.
void requireFits(uint64_t count, uint64_t elemSize, uint64_t available,
                 const std::string& path, const char* what) {
  if (count > available / elemSize) {
    throw GraphFileError(path, std::string("header claims more ") + what +
                                   " than the file can hold");
  }
}

}  // namespace

GraphFile GraphFile::fromCsr(const CsrGraph& graph) {
  GraphFile file;
  file.numNodes_ = graph.numNodes();
  file.numEdges_ = graph.numEdges();
  file.rowStart_.assign(graph.rowStarts().begin(), graph.rowStarts().end());
  file.dests_.assign(graph.destinations().begin(),
                     graph.destinations().end());
  file.edgeData_.assign(graph.edgeDataArray().begin(),
                        graph.edgeDataArray().end());
  file.hasEdgeData_ = !file.edgeData_.empty();
  return file;
}

GraphFile GraphFile::load(const std::string& path) {
  const std::vector<uint8_t> image = readImage(path);
  ByteReader reader(image, path);
  const uint64_t fileBytes = image.size();
  if (fileBytes < 4 * sizeof(uint64_t)) {
    throw GraphFileError(path, "truncated header");
  }
  uint32_t crc = 0;
  auto readChecked = [&](auto* data, size_t count) {
    reader.read(data, count);
    crc = support::crc32Update(crc, data, count * sizeof(*data));
  };
  uint64_t header[4];
  readChecked(header, 4);
  if (header[0] != kMagic) {
    throw GraphFileError(path, "bad magic");
  }
  const uint64_t sizeofEdgeData = header[1];
  if (sizeofEdgeData != 0 && sizeofEdgeData != 4) {
    throw GraphFileError(path, "unsupported edge data size");
  }
  GraphFile file;
  file.numNodes_ = header[2];
  file.numEdges_ = header[3];
  // Validate the claimed counts against the real file size before sizing
  // any buffer from them (see requireFits). numNodes + 1 row entries, so
  // reject numNodes at the u64 ceiling outright.
  const uint64_t payloadBytes = fileBytes - 4 * sizeof(uint64_t);
  if (file.numNodes_ == UINT64_MAX) {
    throw GraphFileError(path, "header claims more nodes than the file can hold");
  }
  requireFits(file.numNodes_ + 1, sizeof(uint64_t), payloadBytes, path,
              "nodes");
  requireFits(file.numEdges_, sizeof(uint64_t) + sizeofEdgeData,
              payloadBytes - (file.numNodes_ + 1) * sizeof(uint64_t), path,
              "edges");
  file.rowStart_.resize(file.numNodes_ + 1);
  readChecked(file.rowStart_.data(), file.rowStart_.size());
  if (file.rowStart_.front() != 0 || file.rowStart_.back() != file.numEdges_ ||
      !std::is_sorted(file.rowStart_.begin(), file.rowStart_.end())) {
    throw GraphFileError(path, "corrupt row index");
  }
  file.dests_.resize(file.numEdges_);
  readChecked(file.dests_.data(), file.dests_.size());
  for (uint64_t dst : file.dests_) {
    if (dst >= file.numNodes_) {
      throw GraphFileError(path, "destination out of range");
    }
  }
  if (sizeofEdgeData == 4) {
    file.edgeData_.resize(file.numEdges_);
    readChecked(file.edgeData_.data(), file.edgeData_.size());
  }
  file.hasEdgeData_ = sizeofEdgeData == 4;
  // Optional CRC footer after the payload (newer writers always add it);
  // legacy files simply end here and are accepted unverified.
  uint64_t footer[2];
  if (reader.remaining() >= sizeof(footer)) {
    reader.read(footer, 2);
    if (footer[0] == support::kCrcFooterMagic &&
        footer[1] != static_cast<uint64_t>(crc)) {
      throw GraphFileError(path, "checksum mismatch");
    }
  }
  return file;
}

namespace {

// Byte size of the file at `path` without pulling it into memory; nullopt
// when the file cannot be opened. Metadata only — not a faultable storage
// read (the subsequent range reads are).
std::optional<uint64_t> fileSizeOf(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return std::nullopt;
  }
  std::optional<uint64_t> size;
  if (std::fseek(f, 0, SEEK_END) == 0) {
    const long end = std::ftell(f);
    if (end >= 0) {
      size = static_cast<uint64_t>(end);
    }
  }
  std::fclose(f);
  return size;
}

// Bounded-window read through the storage seam with typed error
// conversion; a short read means the file is truncated relative to its own
// validated header.
std::vector<uint8_t> readRangeChecked(const std::string& path, uint64_t offset,
                                      uint64_t length) {
  std::optional<std::vector<uint8_t>> bytes;
  try {
    bytes = support::readFileRange(path, offset, length);
  } catch (const support::StorageError& e) {
    throw GraphFileError(path, std::string("storage read failure (") +
                                   e.kindName() + ")");
  }
  if (!bytes) {
    throw GraphFileError(path, "truncated file");
  }
  return std::move(*bytes);
}

// Chunk size for streaming passes over on-disk edge arrays (CRC verify at
// open, toCsr materialization). 4 MiB keeps the resident buffer bounded
// while staying well above the per-call overhead.
constexpr uint64_t kStreamChunkBytes = 4u << 20;

}  // namespace

GraphFile GraphFile::openWindowed(const std::string& path) {
  const std::optional<uint64_t> sizeOpt = fileSizeOf(path);
  if (!sizeOpt) {
    throw GraphFileError(path, "cannot open");
  }
  const uint64_t fileBytes = *sizeOpt;
  if (fileBytes < 4 * sizeof(uint64_t)) {
    throw GraphFileError(path, "truncated header");
  }
  const std::vector<uint8_t> headerBytes =
      readRangeChecked(path, 0, 4 * sizeof(uint64_t));
  uint64_t header[4];
  std::memcpy(header, headerBytes.data(), sizeof(header));
  if (header[0] != kMagic) {
    throw GraphFileError(path, "bad magic");
  }
  const uint64_t sizeofEdgeData = header[1];
  if (sizeofEdgeData != 0 && sizeofEdgeData != 4) {
    throw GraphFileError(path, "unsupported edge data size");
  }
  GraphFile file;
  file.numNodes_ = header[2];
  file.numEdges_ = header[3];
  file.hasEdgeData_ = sizeofEdgeData == 4;
  // Same preflight as load(): validate claimed counts against the real file
  // size before sizing the row index from them.
  const uint64_t payloadBytes = fileBytes - 4 * sizeof(uint64_t);
  if (file.numNodes_ == UINT64_MAX) {
    throw GraphFileError(path,
                         "header claims more nodes than the file can hold");
  }
  requireFits(file.numNodes_ + 1, sizeof(uint64_t), payloadBytes, path,
              "nodes");
  requireFits(file.numEdges_, sizeof(uint64_t) + sizeofEdgeData,
              payloadBytes - (file.numNodes_ + 1) * sizeof(uint64_t), path,
              "edges");
  const uint64_t rowBytes = (file.numNodes_ + 1) * sizeof(uint64_t);
  const std::vector<uint8_t> rowImage =
      readRangeChecked(path, 4 * sizeof(uint64_t), rowBytes);
  file.rowStart_.resize(file.numNodes_ + 1);
  std::memcpy(file.rowStart_.data(), rowImage.data(), rowBytes);
  if (file.rowStart_.front() != 0 || file.rowStart_.back() != file.numEdges_ ||
      !std::is_sorted(file.rowStart_.begin(), file.rowStart_.end())) {
    throw GraphFileError(path, "corrupt row index");
  }
  file.windowed_ = true;
  file.path_ = path;
  file.destOffset_ = 4 * sizeof(uint64_t) + rowBytes;
  file.edgeDataOffset_ = file.destOffset_ + file.numEdges_ * sizeof(uint64_t);
  const uint64_t payloadEnd =
      file.edgeDataOffset_ +
      (file.hasEdgeData_ ? file.numEdges_ * sizeof(uint32_t) : 0);
  if (payloadEnd > fileBytes) {
    throw GraphFileError(path, "truncated file");
  }
  // CRC footer verify via a chunked streaming pass: same guarantee as
  // load() — at-rest corruption anywhere in the image is caught at open —
  // with a bounded buffer instead of a whole-file read. Legacy files with
  // no footer are accepted unverified, as in load().
  if (fileBytes - payloadEnd >= support::kCrcFooterSize) {
    const std::vector<uint8_t> footerBytes =
        readRangeChecked(path, payloadEnd, support::kCrcFooterSize);
    uint64_t footer[2];
    std::memcpy(footer, footerBytes.data(), sizeof(footer));
    if (footer[0] == support::kCrcFooterMagic) {
      uint32_t crc = 0;
      for (uint64_t offset = 0; offset < payloadEnd;
           offset += kStreamChunkBytes) {
        const uint64_t len = std::min(kStreamChunkBytes, payloadEnd - offset);
        const std::vector<uint8_t> chunk = readRangeChecked(path, offset, len);
        crc = support::crc32Update(crc, chunk.data(), chunk.size());
      }
      if (footer[1] != static_cast<uint64_t>(crc)) {
        throw GraphFileError(path, "checksum mismatch");
      }
    }
  }
  return file;
}

std::vector<uint64_t> GraphFile::readDestWindow(uint64_t edgeBegin,
                                                uint64_t edgeEnd) const {
  if (edgeBegin > edgeEnd || edgeEnd > numEdges_) {
    throw GraphFileError(path_, "edge window out of range");
  }
  std::vector<uint64_t> dests(edgeEnd - edgeBegin);
  if (!windowed_) {
    std::copy(dests_.begin() + static_cast<ptrdiff_t>(edgeBegin),
              dests_.begin() + static_cast<ptrdiff_t>(edgeEnd), dests.begin());
    return dests;
  }
  const std::vector<uint8_t> bytes =
      readRangeChecked(path_, destOffset_ + edgeBegin * sizeof(uint64_t),
                       dests.size() * sizeof(uint64_t));
  if (!dests.empty()) {
    std::memcpy(dests.data(), bytes.data(), bytes.size());
  }
  // Re-validate: the open-time CRC covers at-rest state, but this read may
  // itself have been faulted (injected bit rot), and defense-in-depth on a
  // fresh fetch is cheap.
  for (uint64_t dst : dests) {
    if (dst >= numNodes_) {
      throw GraphFileError(path_, "destination out of range");
    }
  }
  return dests;
}

std::vector<uint32_t> GraphFile::readEdgeDataWindow(uint64_t edgeBegin,
                                                    uint64_t edgeEnd) const {
  if (edgeBegin > edgeEnd || edgeEnd > numEdges_) {
    throw GraphFileError(path_, "edge window out of range");
  }
  if (!hasEdgeData_) {
    return {};
  }
  std::vector<uint32_t> weights(edgeEnd - edgeBegin);
  if (!windowed_) {
    std::copy(edgeData_.begin() + static_cast<ptrdiff_t>(edgeBegin),
              edgeData_.begin() + static_cast<ptrdiff_t>(edgeEnd),
              weights.begin());
    return weights;
  }
  const std::vector<uint8_t> bytes =
      readRangeChecked(path_, edgeDataOffset_ + edgeBegin * sizeof(uint32_t),
                       weights.size() * sizeof(uint32_t));
  if (!weights.empty()) {
    std::memcpy(weights.data(), bytes.data(), bytes.size());
  }
  return weights;
}

void GraphFile::save(const std::string& path, const CsrGraph& graph) {
  std::vector<uint8_t> image;
  uint32_t crc = 0;
  auto writeChecked = [&](const auto* data, size_t count) {
    appendBytes(image, data, count);
    crc = support::crc32Update(crc, data, count * sizeof(*data));
  };
  const uint64_t header[4] = {kMagic, graph.hasEdgeData() ? 4ull : 0ull,
                              graph.numNodes(), graph.numEdges()};
  writeChecked(header, 4);
  writeChecked(graph.rowStarts().data(), graph.rowStarts().size());
  writeChecked(graph.destinations().data(), graph.destinations().size());
  if (graph.hasEdgeData()) {
    writeChecked(graph.edgeDataArray().data(), graph.edgeDataArray().size());
  }
  const uint64_t footer[2] = {support::kCrcFooterMagic,
                              static_cast<uint64_t>(crc)};
  appendBytes(image, footer, 2);
  support::atomicWriteFile(path, image);  // StorageError on failure
}

CsrGraph GraphFile::toCsr() const {
  if (!windowed_) {
    return CsrGraph(rowStart_, dests_, edgeData_);
  }
  // Offline consumers materialize the whole graph by definition; stream the
  // on-disk arrays in bounded chunks rather than one whole-file read.
  const uint64_t chunkEdges =
      std::max<uint64_t>(1, kStreamChunkBytes / sizeof(uint64_t));
  std::vector<uint64_t> dests;
  dests.reserve(numEdges_);
  std::vector<uint32_t> edgeData;
  if (hasEdgeData_) {
    edgeData.reserve(numEdges_);
  }
  for (uint64_t e = 0; e < numEdges_; e += chunkEdges) {
    const uint64_t end = std::min(numEdges_, e + chunkEdges);
    const std::vector<uint64_t> destChunk = readDestWindow(e, end);
    dests.insert(dests.end(), destChunk.begin(), destChunk.end());
    if (hasEdgeData_) {
      const std::vector<uint32_t> dataChunk = readEdgeDataWindow(e, end);
      edgeData.insert(edgeData.end(), dataChunk.begin(), dataChunk.end());
    }
  }
  return CsrGraph(rowStart_, std::move(dests), std::move(edgeData));
}

GraphFile GraphFile::loadGalois(const std::string& path) {
  const std::vector<uint8_t> image = readImage(path);
  ByteReader reader(image, path);
  const uint64_t fileBytes = image.size();
  if (fileBytes < 4 * sizeof(uint64_t)) {
    throw GraphFileError(path, "truncated .gr header");
  }
  uint64_t header[4];
  reader.read(header, 4);
  if (header[0] != 1) {
    throw GraphFileError(path, "unsupported .gr version");
  }
  const uint64_t sizeofEdgeData = header[1];
  if (sizeofEdgeData != 0 && sizeofEdgeData != 4) {
    throw GraphFileError(path, "unsupported .gr edge data size");
  }
  GraphFile file;
  file.numNodes_ = header[2];
  file.numEdges_ = header[3];
  // Same preflight as load(): row index is numNodes u64s, dests numEdges
  // u32s, edge data (if any) numEdges more u32s — all of which must fit
  // the real file before any buffer is sized from the claimed counts.
  const uint64_t payloadBytes = fileBytes - 4 * sizeof(uint64_t);
  if (file.numNodes_ == UINT64_MAX) {
    throw GraphFileError(path,
                         "header claims more nodes than the file can hold");
  }
  requireFits(file.numNodes_, sizeof(uint64_t), payloadBytes, path, "nodes");
  requireFits(file.numEdges_, sizeof(uint32_t) + sizeofEdgeData,
              payloadBytes - file.numNodes_ * sizeof(uint64_t), path, "edges");
  // v1 stores row END offsets; rebuild our rowStart convention.
  std::vector<uint64_t> outIdx(file.numNodes_);
  reader.read(outIdx.data(), outIdx.size());
  file.rowStart_.assign(file.numNodes_ + 1, 0);
  for (uint64_t v = 0; v < file.numNodes_; ++v) {
    file.rowStart_[v + 1] = outIdx[v];
  }
  if ((file.numNodes_ > 0 && file.rowStart_.back() != file.numEdges_) ||
      !std::is_sorted(file.rowStart_.begin(), file.rowStart_.end())) {
    throw GraphFileError(path, "corrupt .gr index");
  }
  std::vector<uint32_t> dests32(file.numEdges_);
  reader.read(dests32.data(), dests32.size());
  file.dests_.assign(dests32.begin(), dests32.end());
  for (uint64_t dst : file.dests_) {
    if (dst >= file.numNodes_) {
      throw GraphFileError(path, ".gr destination out of range");
    }
  }
  if (sizeofEdgeData == 4) {
    if (file.numEdges_ % 2 == 1) {
      uint32_t padding = 0;
      reader.read(&padding, 1);
    }
    file.edgeData_.resize(file.numEdges_);
    reader.read(file.edgeData_.data(), file.edgeData_.size());
  }
  file.hasEdgeData_ = sizeofEdgeData == 4;
  return file;
}

void GraphFile::saveGalois(const std::string& path, const CsrGraph& graph) {
  if (graph.numNodes() > UINT32_MAX) {
    throw std::invalid_argument(
        "GraphFile: .gr v1 cannot hold graphs with 2^32+ nodes");
  }
  std::vector<uint8_t> image;
  const uint64_t header[4] = {1, graph.hasEdgeData() ? 4ull : 0ull,
                              graph.numNodes(), graph.numEdges()};
  appendBytes(image, header, 4);
  // Row END offsets.
  std::vector<uint64_t> outIdx(graph.numNodes());
  for (uint64_t v = 0; v < graph.numNodes(); ++v) {
    outIdx[v] = graph.edgeEnd(v);
  }
  appendBytes(image, outIdx.data(), outIdx.size());
  std::vector<uint32_t> dests32(graph.destinations().begin(),
                                graph.destinations().end());
  appendBytes(image, dests32.data(), dests32.size());
  if (graph.hasEdgeData()) {
    if (graph.numEdges() % 2 == 1) {
      const uint32_t padding = 0;
      appendBytes(image, &padding, 1);
    }
    appendBytes(image, graph.edgeDataArray().data(),
                graph.edgeDataArray().size());
  }
  support::atomicWriteFile(path, image);  // StorageError on failure
}

std::vector<ReadRange> computeReadRanges(std::span<const uint64_t> rowStart,
                                         uint32_t numHosts, double nodeWeight,
                                         double edgeWeight) {
  if (numHosts == 0) {
    throw std::invalid_argument("computeReadRanges: numHosts must be > 0");
  }
  if (rowStart.empty()) {
    throw std::invalid_argument("computeReadRanges: empty row index");
  }
  if (nodeWeight < 0 || edgeWeight < 0 || (nodeWeight == 0 && edgeWeight == 0)) {
    throw std::invalid_argument("computeReadRanges: bad importance weights");
  }
  const uint64_t numNodes = rowStart.size() - 1;
  const uint64_t numEdges = rowStart.back();
  const double totalUnits = nodeWeight * static_cast<double>(numNodes) +
                            edgeWeight * static_cast<double>(numEdges);
  // unitsBefore(v) is monotone in v, so each split point is a binary search.
  auto unitsBefore = [&](uint64_t v) {
    return nodeWeight * static_cast<double>(v) +
           edgeWeight * static_cast<double>(rowStart[v]);
  };
  std::vector<ReadRange> ranges(numHosts);
  uint64_t prev = 0;
  for (uint32_t h = 0; h < numHosts; ++h) {
    const double target =
        totalUnits * static_cast<double>(h + 1) / static_cast<double>(numHosts);
    uint64_t lo = prev;
    uint64_t hi = numNodes;
    // Find the smallest v with unitsBefore(v) >= target.
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (unitsBefore(mid) < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint64_t cut = (h + 1 == numHosts) ? numNodes : lo;
    ranges[h] = ReadRange{prev, cut, rowStart[prev], rowStart[cut]};
    prev = cut;
  }
  return ranges;
}

std::vector<ReadRange> contiguousEbRanges(std::span<const uint64_t> rowStart,
                                          uint32_t numHosts) {
  if (numHosts == 0) {
    throw std::invalid_argument("contiguousEbRanges: numHosts must be > 0");
  }
  if (rowStart.empty()) {
    throw std::invalid_argument("contiguousEbRanges: empty row index");
  }
  const uint64_t numNodes = rowStart.size() - 1;
  const uint64_t numEdges = rowStart.back();
  const uint64_t blockSize = (numEdges + 1 + numHosts - 1) / numHosts;
  std::vector<ReadRange> ranges(numHosts);
  uint64_t prev = 0;
  for (uint32_t h = 0; h < numHosts; ++h) {
    // End of host h's range: first v with floor(rowStart[v]/blockSize) > h,
    // i.e. rowStart[v] >= (h+1)*blockSize. Binary search (rowStart sorted).
    const uint64_t bound = (h + 1) * blockSize;
    uint64_t lo = prev;
    uint64_t hi = numNodes;
    while (lo < hi) {
      const uint64_t mid = lo + (hi - lo) / 2;
      if (rowStart[mid] < bound) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const uint64_t cut = (h + 1 == numHosts) ? numNodes : lo;
    ranges[h] = ReadRange{prev, cut, rowStart[prev], rowStart[cut]};
    prev = cut;
  }
  return ranges;
}

uint32_t readingHostOf(std::span<const ReadRange> ranges, uint64_t node) {
  // Binary search over nodeBegin; ranges are contiguous and sorted, but some
  // may be empty, so find the last range whose nodeBegin <= node and then
  // advance past empties.
  uint32_t lo = 0;
  uint32_t hi = static_cast<uint32_t>(ranges.size());
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (ranges[mid].nodeEnd <= node) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo >= ranges.size() || node < ranges[lo].nodeBegin ||
      node >= ranges[lo].nodeEnd) {
    throw std::out_of_range("readingHostOf: node not covered by any range");
  }
  return lo;
}

}  // namespace cusp::graph
