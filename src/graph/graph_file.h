// On-disk binary CSR graph format and the "disk" abstraction for CuSP.
//
// Format (little-endian, file extension .cgr), modelled on the Galois .gr
// format the paper's implementation consumes:
//
//   u64 magic          'C','G','R','1',0,0,0,0
//   u64 sizeofEdgeData 0 (unweighted) or 4 (uint32 weights)
//   u64 numNodes
//   u64 numEdges
//   u64 rowStart[numNodes + 1]   exclusive prefix sum of out-degrees
//   u64 dests[numEdges]
//   u32 edgeData[numEdges]       present iff sizeofEdgeData == 4
//
// GraphFile plays the role of the Lustre-resident input in the paper: it is
// immutable, shared by all simulated hosts, and hosts read *windows* of it
// (a contiguous node range plus that range's edges) during the
// graph-reading phase. GraphFile can be backed by a real file on disk or
// constructed directly from an in-memory CsrGraph (tests and benches use
// both paths; they are byte-for-byte equivalent).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace cusp::graph {

// Structured error for every way a graph file can be unusable: missing,
// truncated, bad magic, a header whose claimed node/edge counts cannot fit
// in the actual file, a corrupt index, or a failed checksum. Loaders
// validate the header against the real file size BEFORE sizing any buffer,
// so a garbage header can never trigger a huge allocation or a read past
// the end of the payload. Derives from std::runtime_error so existing
// catch sites keep working; `path()`/`reason()` give callers the pieces.
class GraphFileError : public std::runtime_error {
 public:
  GraphFileError(const std::string& path, const std::string& reason)
      : std::runtime_error("GraphFile: " + reason + " [" + path + "]"),
        path_(path),
        reason_(reason) {}

  const std::string& path() const { return path_; }
  const std::string& reason() const { return reason_; }

 private:
  std::string path_;
  std::string reason_;
};

class GraphFile {
 public:
  GraphFile() = default;

  // Wraps an in-memory graph (no disk involved). The graph is copied.
  static GraphFile fromCsr(const CsrGraph& graph);

  // Reads a .cgr file fully into memory, validating the header against the
  // actual file size before any allocation. Throws GraphFileError on any
  // malformed input (missing file, bad magic, counts that don't fit the
  // file, corrupt index, checksum mismatch).
  static GraphFile load(const std::string& path);

  // True bounded-window streaming open: materializes only the header and the
  // row index ((numNodes + 1) * 8 bytes); destinations and edge data stay on
  // disk and are fetched per edge range with readDestWindow /
  // readEdgeDataWindow. The CRC footer is verified at open time with a
  // chunked streaming read (bounded buffer), so at-rest corruption is caught
  // up front exactly as load() catches it. Whole-image accessors
  // (destinations(), outNeighbors(), edgeData()) throw GraphFileError in
  // this mode — callers must go through the window API.
  static GraphFile openWindowed(const std::string& path);

  // Writes `graph` to `path` in .cgr format.
  static void save(const std::string& path, const CsrGraph& graph);

  uint64_t numNodes() const { return numNodes_; }
  uint64_t numEdges() const { return numEdges_; }
  bool hasEdgeData() const { return hasEdgeData_; }
  bool windowed() const { return windowed_; }

  // Whole-file accessors (the "disk contents"). destinations() and
  // edgeDataArray() require a fully materialized file (they throw
  // GraphFileError when windowed()); rowStarts() works in both modes.
  std::span<const uint64_t> rowStarts() const { return rowStart_; }
  std::span<const uint64_t> destinations() const {
    requireResident("destinations()");
    return dests_;
  }
  std::span<const uint32_t> edgeDataArray() const {
    requireResident("edgeDataArray()");
    return edgeData_;
  }

  // Bounded-window reads of the edge range [edgeBegin, edgeEnd): the only
  // way hosts touch edges in windowed mode, and byte-identical to slicing
  // the in-memory arrays when the file is resident (the streaming fuzz test
  // asserts this). Windowed reads go through support::readFileRange, so
  // injected storage faults apply; every fetched destination is re-validated
  // against numNodes. Throws GraphFileError on truncation or a read fault.
  std::vector<uint64_t> readDestWindow(uint64_t edgeBegin,
                                       uint64_t edgeEnd) const;
  std::vector<uint32_t> readEdgeDataWindow(uint64_t edgeBegin,
                                           uint64_t edgeEnd) const;

  uint64_t outDegree(uint64_t node) const {
    return rowStart_[node + 1] - rowStart_[node];
  }
  uint64_t firstOutEdge(uint64_t node) const { return rowStart_[node]; }
  std::span<const uint64_t> outNeighbors(uint64_t node) const {
    return destinations().subspan(rowStart_[node],
                                  rowStart_[node + 1] - rowStart_[node]);
  }
  uint32_t edgeData(uint64_t edge) const {
    requireResident("edgeData()");
    return edgeData_.empty() ? 0 : edgeData_[edge];
  }

  // Materializes the full graph (used by offline partitioners, which by
  // definition load the whole graph). Works in windowed mode too, streaming
  // the edges in bounded chunks.
  CsrGraph toCsr() const;

  // --- Galois .gr (version 1) interop ---
  //
  // The format the real CuSP/Galois ecosystem consumes: u64 header
  // {version=1, sizeofEdgeData, numNodes, numEdges}, u64 outIdxs[numNodes]
  // (row END offsets), u32 dests[numEdges] padded to 8 bytes, then u32
  // edge data if sizeofEdgeData == 4. Node ids are 32-bit in v1, so graphs
  // with 2^32+ nodes are rejected on save.
  static GraphFile loadGalois(const std::string& path);
  static void saveGalois(const std::string& path, const CsrGraph& graph);

 private:
  void requireResident(const char* what) const {
    if (windowed_) {
      throw GraphFileError(path_, std::string(what) +
                                      " requires a resident file; use the "
                                      "window API in windowed mode");
    }
  }

  uint64_t numNodes_ = 0;
  uint64_t numEdges_ = 0;
  bool hasEdgeData_ = false;
  std::vector<uint64_t> rowStart_{0};
  std::vector<uint64_t> dests_;
  std::vector<uint32_t> edgeData_;

  // Windowed-mode state: the backing file path and the byte offsets of the
  // on-disk destination / edge-data arrays (fixed by the .cgr layout once
  // the header is read).
  bool windowed_ = false;
  std::string path_;
  uint64_t destOffset_ = 0;
  uint64_t edgeDataOffset_ = 0;
};

// A host's assigned window of the on-disk graph: the contiguous node range
// [nodeBegin, nodeEnd) and that range's edge range [edgeBegin, edgeEnd).
struct ReadRange {
  uint64_t nodeBegin = 0;
  uint64_t nodeEnd = 0;
  uint64_t edgeBegin = 0;
  uint64_t edgeEnd = 0;

  uint64_t numNodes() const { return nodeEnd - nodeBegin; }
  uint64_t numEdges() const { return edgeEnd - edgeBegin; }
  friend bool operator==(const ReadRange&, const ReadRange&) = default;
};

// Splits the node sequence into `numHosts` contiguous ranges balancing the
// weighted unit count nodeWeight * nodes + edgeWeight * edges per range
// (paper Section IV-B1: edge-balanced by default, tunable toward node
// balance). Never splits a node's out-edges across hosts. Ranges cover
// [0, numNodes) exactly and are non-overlapping.
std::vector<ReadRange> computeReadRanges(std::span<const uint64_t> rowStart,
                                         uint32_t numHosts,
                                         double nodeWeight = 0.0,
                                         double edgeWeight = 1.0);

inline std::vector<ReadRange> computeReadRanges(const GraphFile& file,
                                                uint32_t numHosts,
                                                double nodeWeight = 0.0,
                                                double edgeWeight = 1.0) {
  return computeReadRanges(file.rowStarts(), numHosts, nodeWeight, edgeWeight);
}

// Splits nodes using the paper's ContiguousEB formula:
//   blockSize = ceil((numEdges + 1) / numHosts)
//   host(v)   = floor(firstOutEdge(v) / blockSize)
// This is the partitioner's default reading split so that the ContiguousEB
// master rule assigns every vertex to the host that read it — which is what
// makes EEC communication-free (paper Section V-A).
std::vector<ReadRange> contiguousEbRanges(std::span<const uint64_t> rowStart,
                                          uint32_t numHosts);

inline std::vector<ReadRange> contiguousEbRanges(const GraphFile& file,
                                                 uint32_t numHosts) {
  return contiguousEbRanges(file.rowStarts(), numHosts);
}

// Returns the host whose read range contains `node` (binary search).
uint32_t readingHostOf(std::span<const ReadRange> ranges, uint64_t node);

}  // namespace cusp::graph
