// Text edge-list input/output and format converters.
//
// The paper notes that CuSP "provides converters between these [CSR/CSC] and
// other graph formats like edge-lists". The text format is one edge per
// line: "src dst [weight]", '#' or '%' comment lines ignored, whitespace
// separated. Node ids are zero-based; the node count is 1 + max id unless
// given explicitly.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace cusp::graph {

struct EdgeListParseResult {
  std::vector<Edge> edges;
  NodeId numNodes = 0;   // 1 + max endpoint seen (or explicit override)
  bool sawWeights = false;
};

// Parses an edge-list stream. Throws std::runtime_error on malformed lines
// (non-numeric tokens, missing dst, negative ids).
EdgeListParseResult parseEdgeList(std::istream& in);
EdgeListParseResult parseEdgeListFile(const std::string& path);

void writeEdgeList(std::ostream& out, const CsrGraph& graph);
void writeEdgeListFile(const std::string& path, const CsrGraph& graph);

// Converters ("cusp-convert" in the example tools):
//   edge list text  -> in-memory CSR (optionally CSC, i.e. transposed)
CsrGraph edgeListToCsr(const EdgeListParseResult& parsed,
                       bool keepWeights = true);

}  // namespace cusp::graph
