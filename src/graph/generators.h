// Deterministic synthetic graph generators.
//
// The paper evaluates on kron30 (Kronecker, graph500 weights) and four large
// web crawls (gsh15, clueweb12, uk14, wdc12). Neither multi-terabyte crawls
// nor a cluster are available here, so these generators produce scaled-down
// stand-ins that preserve the structural properties the partitioning
// policies react to: heavy-tailed degree distributions, max in-degree far
// above max out-degree (web crawls), and |E|/|V| ratios from paper Table III.
//
// All generators are deterministic functions of their seed: every edge is
// produced from an Rng seeded by hash(seed, index), so results are identical
// across thread counts and platforms.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr_graph.h"

namespace cusp::graph {

// A generator request whose edge/node arithmetic does not fit uint64_t (or
// a sane materialization bound). Raised instead of silently wrapping the
// size passed to reserve()/fromEdges — an overflowed reserve under-allocates
// and the generator then quietly builds the wrong graph.
class GeneratorError : public std::runtime_error {
 public:
  explicit GeneratorError(const std::string& what)
      : std::runtime_error(what) {}
};

struct RmatParams {
  uint32_t scale = 10;          // numNodes = 2^scale
  uint64_t numEdges = 16ull << 10;
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;  // graph500 weights
  uint64_t seed = 1;
  bool removeSelfLoops = false;
  bool dedupe = false;
};

// RMAT / Kronecker generator (stand-in for kron30).
CsrGraph generateRmat(const RmatParams& params);

struct WebCrawlParams {
  uint64_t numNodes = 1 << 14;
  double avgOutDegree = 16.0;
  // Pareto shape for out-degrees; smaller alpha = heavier tail.
  double outDegreeAlpha = 2.0;
  uint64_t maxOutDegree = 0;     // 0 = numNodes/4 cap
  // Fraction of edges drawn from a local window (site-locality of crawls);
  // the rest point at global "hubs" with a skewed distribution, producing
  // max in-degree orders of magnitude above max out-degree (Table III).
  double localFraction = 0.5;
  // Width of the local window; 0 = auto (max(16, numNodes/256)). Real
  // crawls' site locality spans a tiny fraction of the node range, far
  // smaller than any per-host block, so the window must scale with the
  // graph or locality becomes artificially invisible to contiguous
  // partitioning.
  uint64_t localWindow = 0;
  double hubSkew = 4.0;          // larger = more concentrated in-links
  uint64_t seed = 2;
};

// Power-law web-crawl-like generator (stand-in for gsh15/clueweb12/uk14/wdc12).
CsrGraph generateWebCrawl(const WebCrawlParams& params);

// Erdős–Rényi G(n, m): m edges drawn uniformly (with replacement).
CsrGraph generateErdosRenyi(uint64_t numNodes, uint64_t numEdges,
                            uint64_t seed);

// Barabási–Albert preferential attachment: each new vertex attaches
// `edgesPerNode` out-edges to existing vertices with probability
// proportional to their current degree (implemented with the standard
// repeated-endpoint trick). Produces the classic power-law degree tail.
CsrGraph generateBarabasiAlbert(uint64_t numNodes, uint64_t edgesPerNode,
                                uint64_t seed);

// Watts–Strogatz small world: a ring lattice where each vertex connects to
// its `neighborsEachSide` successors, with each edge's endpoint rewired
// uniformly at random with probability `rewireProbability`. High
// clustering + short paths; a structurally different stress case from the
// power-law families.
CsrGraph generateWattsStrogatz(uint64_t numNodes, uint64_t neighborsEachSide,
                               double rewireProbability, uint64_t seed);

// Relabels vertices with a deterministic pseudorandom permutation of
// [0, numNodes). Locality-sensitive policies (Contiguous*, the read split)
// behave very differently on permuted ids; useful for ablations and tests.
CsrGraph permuteNodeIds(const CsrGraph& graph, uint64_t seed);

// Small structured graphs for tests.
CsrGraph makePath(uint64_t numNodes);                // i -> i+1
CsrGraph makeCycle(uint64_t numNodes);               // i -> (i+1) % n
CsrGraph makeStar(uint64_t numLeaves);               // 0 -> 1..n
CsrGraph makeComplete(uint64_t numNodes);            // all i -> j, i != j
CsrGraph makeGrid(uint64_t rows, uint64_t cols);     // right + down edges

// Returns a copy of `graph` with uniformly random edge weights in
// [1, maxWeight] (deterministic in seed). Used by sssp.
CsrGraph withRandomWeights(const CsrGraph& graph, uint32_t maxWeight,
                           uint64_t seed);

// The five evaluation inputs from paper Table III at reduced scale.
// `name` is one of: kron, gsh, clueweb, uk, wdc. `targetEdges` sets the
// scaled size; |V| follows the paper's |E|/|V| ratio for that input.
struct StandInInfo {
  std::string name;
  double edgesPerNode;  // Table III |E|/|V|
};
const std::vector<StandInInfo>& standInCatalog();
CsrGraph makeStandIn(const std::string& name, uint64_t targetEdges,
                     uint64_t seed = 42);

}  // namespace cusp::graph
